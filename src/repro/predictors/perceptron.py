"""Hashed-perceptron bypass prediction (two-level neural approach, distilled).

Jamet et al.'s two-level neural dead-block approach (PAPERS.md) runs a
full neural predictor; the practical distillation — following the
hashed-perceptron line of Teran/Jiménez — is a set of small signed-weight
tables, one per hashed feature, whose sum drives the decision. This
module applies that to the paper's two structures:

* **features** are fold-XOR hashes the simulator already computes: for
  the LLT, the PC, the VPN and two PC⊕VPN mixes (the pHIST indexing
  idiom widened); for the LLC, the PC, the block address, the block's
  *page* (the paper's page↔block correlation, Section IV) and a
  PC⊕block mix;
* **prediction** at fill time: the entry is dead-on-arrival iff the sum
  of the feature weights reaches ``threshold``. Cold tables sum to 0 and
  allocate;
* **training** at eviction time only, margin-gated: weights move (by ±1,
  saturating at ``±weight_limit``) when the prediction was wrong or the
  sum's magnitude is below ``train_margin`` — the perceptron update rule,
  all in small integers, so runs are bit-reproducible across platforms.

Bypassed fills never evict and so never train; as in
:mod:`repro.predictors.leeway`, every ``sample_period``-th predicted-DOA
fill of a signature set is allocated anyway so the tables keep learning.

Per :class:`~repro.predictors.base.PredictorSpec`, the flat interpreter
does not model this listener: perceptron configs run the bulk+scalar
hybrid with a counted ``predictor`` decline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.common.bitops import fold_xor
from repro.common.stats import Stats
from repro.mem.cache import FILL_ALLOCATE as CACHE_ALLOCATE
from repro.mem.cache import FILL_BYPASS as CACHE_BYPASS
from repro.mem.cache import CacheLine, CacheListener, SetAssocCache
from repro.obs.events import (
    EV_LLC_BYPASS,
    EV_LLC_VERDICT,
    EV_LLT_BYPASS,
    EV_LLT_VERDICT,
)
from repro.predictors.base import AccessContext
from repro.vm.tlb import FILL_ALLOCATE, FILL_BYPASS, Tlb, TlbEntry, TlbListener

#: Block-to-page shift (64-byte blocks in 4 KB pages).
_PAGE_OF_BLOCK_SHIFT = 6


@dataclass(frozen=True)
class PerceptronConfig:
    """Hashed-perceptron knobs.

    ``table_bits`` — per-feature weight-table index width.
    ``weight_bits`` — signed weight width; weights saturate at
    ``±(2^(weight_bits-1) - 1)``. ``threshold`` — weight sum at which a
    fill is predicted dead. ``train_margin`` — confidence margin below
    which correct predictions still train. ``sample_period`` — every N-th
    predicted-DOA fill is allocated anyway to keep training samples
    flowing.
    """

    table_bits: int = 8
    weight_bits: int = 6
    threshold: int = 4
    train_margin: int = 32
    sample_period: int = 64

    def validate(self) -> None:
        if self.table_bits <= 0:
            raise ValueError("table_bits must be positive")
        if self.weight_bits < 2:
            raise ValueError("weight_bits must be >= 2")
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.train_margin < 0:
            raise ValueError("train_margin must be >= 0")
        if self.sample_period <= 1:
            raise ValueError("sample_period must be > 1")


class _PerceptronState:
    """Per-entry metadata: the feature indices and the fill-time sum."""

    __slots__ = ("features", "yout")

    def __init__(self, features: Tuple[int, ...], yout: int):
        self.features = features
        self.yout = yout


class _PerceptronCore:
    """Weight tables + the margin-gated integer training rule."""

    NUM_FEATURES = 4

    def __init__(self, config: PerceptronConfig = PerceptronConfig()):
        config.validate()
        self.config = config
        self.weight_limit = (1 << (config.weight_bits - 1)) - 1
        rows = 1 << config.table_bits
        self._tables: List[List[int]] = [
            [0] * rows for _ in range(self.NUM_FEATURES)
        ]
        self._bypass_streak = 0
        self.stats = Stats()

    def predict(self, features: Tuple[int, ...]) -> _PerceptronState:
        yout = 0
        for table, idx in zip(self._tables, features):
            yout += table[idx]
        return _PerceptronState(features, yout)

    def predicts_doa(self, state: _PerceptronState) -> bool:
        return state.yout >= self.config.threshold

    def should_sample(self) -> bool:
        streak = self._bypass_streak + 1
        if streak >= self.config.sample_period:
            self._bypass_streak = 0
            return True
        self._bypass_streak = streak
        return False

    def train(self, state: _PerceptronState, was_doa: bool) -> None:
        """Perceptron update: move toward the eviction-time ground truth
        when mispredicted or insufficiently confident."""
        predicted = self.predicts_doa(state)
        if predicted == was_doa and abs(state.yout) > self.config.train_margin:
            return
        limit = self.weight_limit
        step = 1 if was_doa else -1
        for table, idx in zip(self._tables, state.features):
            w = table[idx] + step
            if -limit <= w <= limit:
                table[idx] = w
        self.stats.add("trainings")

    def storage_bits(self, num_entries: int) -> int:
        """Weight tables + per-entry feature indices and fill-time sum."""
        rows = 1 << self.config.table_bits
        tables = self.NUM_FEATURES * rows * self.config.weight_bits
        # Per-entry: the hashed feature indices plus a sum wide enough
        # for NUM_FEATURES saturated weights (weight_bits + 2 bits).
        per_entry = (
            self.NUM_FEATURES * self.config.table_bits
            + self.config.weight_bits + 2
        ) * num_entries
        return tables + per_entry


def _tlb_features(pc: int, vpn: int, bits: int) -> Tuple[int, ...]:
    return (
        fold_xor(pc, bits),
        fold_xor(vpn, bits),
        fold_xor(pc ^ (vpn << 1), bits),
        fold_xor((pc >> 4) ^ vpn, bits),
    )


def _cache_features(pc: int, block: int, bits: int) -> Tuple[int, ...]:
    return (
        fold_xor(pc, bits),
        fold_xor(block, bits),
        fold_xor(block >> _PAGE_OF_BLOCK_SHIFT, bits),  # the block's page
        fold_xor(pc ^ (block << 1), bits),
    )


class PerceptronTlbPredictor(TlbListener):
    """Hashed-perceptron dead-page bypass on the LLT."""

    def __init__(
        self,
        config: PerceptronConfig = PerceptronConfig(),
        context: Optional[AccessContext] = None,
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        self.core = _PerceptronCore(config)
        self.context = context  # unused: the LLT fill carries the PC
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._pending: Optional[_PerceptronState] = None

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        core = self.core
        state = core.predict(
            _tlb_features(pc, vpn, core.config.table_bits)
        )
        predicted_doa = core.predicts_doa(state)
        if self.prediction_observer is not None:
            self.prediction_observer(vpn, predicted_doa)
        if predicted_doa:
            if core.should_sample():
                self.stats.add("sampled_allocations")
            else:
                self.stats.add("doa_predictions")
                if self.probe is not None:
                    self.probe.emit(now, EV_LLT_BYPASS, vpn, pfn)
                self._pending = None
                return FILL_BYPASS
        self._pending = state
        return FILL_ALLOCATE

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        entry.aux = self._pending
        self._pending = None

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux is None:
            return
        self.core.train(entry.aux, not entry.accessed)
        if self.probe is not None:
            self.probe.emit(
                now, EV_LLT_VERDICT, entry.vpn, False, not entry.accessed
            )

    def storage_bits(self, llt_entries: int) -> int:
        return self.core.storage_bits(llt_entries)


class PerceptronCachePredictor(CacheListener):
    """Hashed-perceptron dead-block bypass on the LLC."""

    def __init__(
        self,
        config: PerceptronConfig = PerceptronConfig(),
        context: Optional[AccessContext] = None,
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        if context is None:
            raise ValueError(
                "PerceptronCachePredictor needs the machine's AccessContext "
                "(block addresses carry no PC)"
            )
        self.core = _PerceptronCore(config)
        self.context = context
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._pending: Optional[_PerceptronState] = None

    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        core = self.core
        state = core.predict(
            _cache_features(self.context.pc, block, core.config.table_bits)
        )
        predicted_doa = core.predicts_doa(state)
        if self.prediction_observer is not None:
            self.prediction_observer(block, predicted_doa)
        if predicted_doa:
            if core.should_sample():
                self.stats.add("sampled_allocations")
            else:
                self.stats.add("doa_predictions")
                if self.probe is not None:
                    self.probe.emit(now, EV_LLC_BYPASS, block)
                self._pending = None
                return CACHE_BYPASS
        self._pending = state
        return CACHE_ALLOCATE

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        line.aux = self._pending
        self._pending = None

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if line.aux is None:
            return
        self.core.train(line.aux, not line.accessed)
        if self.probe is not None:
            self.probe.emit(
                now, EV_LLC_VERDICT, line.tag, False, not line.accessed
            )

    def storage_bits(self, llc_blocks: int) -> int:
        return self.core.storage_bits(llc_blocks)
