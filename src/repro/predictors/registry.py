"""The predictor registry: name → factory dispatch for both structures.

``Machine`` used to construct its listeners through a hard-wired if/elif
chain, so adding a predictor meant editing the machine. Construction is
now data: a factory registered under ``(kind, name)`` — kind is
:data:`KIND_TLB` or :data:`KIND_LLC`, name is the public string that
appears in :class:`~repro.sim.config.SystemConfig` (the existing
``TLB_PRED_*`` / ``LLC_PRED_*`` constants). A new predictor is one
``register()`` call away:

    from repro.predictors import registry

    @registry.register(registry.KIND_TLB, "mypred")
    def _build(config, ctx):
        return MyTlbPredictor(MyConfig(...), context=ctx.context)

Factories take ``(config, ctx)`` — the frozen
:class:`~repro.sim.config.SystemConfig` plus a :class:`BuildContext` —
and return a listener satisfying
:class:`~repro.predictors.base.PredictorSpec`. Everything else
(telemetry probes, prediction observers, the dpPred→cbPred PFN coupling,
the prefetcher's page-table resolver) is wired by ``Machine`` *after*
construction, exactly as before the registry existed: the builtin
factories below replicate the old if/elif construction argument for
argument, and ``tests/test_predictor_registry.py`` pins the identity.

:class:`~repro.sim.config.SystemConfig` validates predictor names
against this registry at construction time, so late registration order
matters only in the trivial sense: register before building configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.cbpred import CbPredConfig, CorrelatingDeadBlockPredictor
from repro.core.dppred import DeadPagePredictor, DpPredConfig
from repro.predictors.aip import AipCachePredictor, AipTlbPredictor
from repro.predictors.base import AccessContext
from repro.predictors.leeway import (
    LeewayCachePredictor,
    LeewayConfig,
    LeewayTlbPredictor,
)
from repro.predictors.oracle import (
    DoaRecordingCacheListener,
    DoaRecordingListener,
    OracleCacheListener,
    OracleTlbListener,
)
from repro.predictors.perceptron import (
    PerceptronCachePredictor,
    PerceptronConfig,
    PerceptronTlbPredictor,
)
from repro.predictors.prefetch import DistanceTlbPrefetcher
from repro.predictors.ship import ShipCachePredictor, ShipConfig, ShipTlbPredictor

#: Registry kinds — the structure a predictor attaches to.
KIND_TLB = "tlb"
KIND_LLC = "llc"
_KINDS = (KIND_TLB, KIND_LLC)


@dataclass
class BuildContext:
    """Everything a factory may need beyond the frozen config.

    ``context`` — the machine's :class:`AccessContext` (LLC-side
    predictors read the in-flight PC from it). ``oracle_outcomes`` /
    ``llc_oracle_outcomes`` — pass-1 DOA recordings for the two-pass
    oracle (None selects the recording pass).
    """

    context: AccessContext = field(default_factory=AccessContext)
    oracle_outcomes: Optional[dict] = None
    llc_oracle_outcomes: Optional[dict] = None


Factory = Callable[[object, BuildContext], object]

_FACTORIES: Dict[Tuple[str, str], Factory] = {}


def _check_kind(kind: str) -> None:
    if kind not in _KINDS:
        raise ValueError(f"unknown predictor kind {kind!r}; choose from {_KINDS}")


def register(kind: str, name: str, factory: Optional[Factory] = None):
    """Register ``factory`` under ``(kind, name)``.

    Usable directly (``register("tlb", "x", build_x)``) or as a decorator
    (``@register("tlb", "x")``). Re-registering a name is an error —
    shadowing a predictor silently would break the byte-identity
    contracts keyed on config strings.
    """
    _check_kind(kind)
    if not name or not isinstance(name, str):
        raise ValueError(f"predictor name must be a non-empty string, got {name!r}")

    def _do_register(fn: Factory) -> Factory:
        key = (kind, name)
        if key in _FACTORIES:
            raise ValueError(
                f"{kind} predictor {name!r} is already registered"
            )
        _FACTORIES[key] = fn
        return fn

    if factory is None:
        return _do_register
    return _do_register(factory)


def unregister(kind: str, name: str) -> None:
    """Remove a registration (tests and plugin teardown)."""
    _check_kind(kind)
    _FACTORIES.pop((kind, name), None)


def registered_names(kind: str) -> Tuple[str, ...]:
    """Sorted public names registered for ``kind`` (excludes "none")."""
    _check_kind(kind)
    return tuple(sorted(n for k, n in _FACTORIES if k == kind))


def is_registered(kind: str, name: str) -> bool:
    _check_kind(kind)
    return (kind, name) in _FACTORIES


def build(kind: str, name: str, config, ctx: Optional[BuildContext] = None):
    """Build the ``kind`` predictor registered as ``name``.

    ``config`` is the frozen :class:`~repro.sim.config.SystemConfig`;
    ``ctx`` defaults to an empty :class:`BuildContext`. Unknown names
    raise ``ValueError`` naming every registered choice.
    """
    _check_kind(kind)
    factory = _FACTORIES.get((kind, name))
    if factory is None:
        raise ValueError(
            f"unknown {kind} predictor {name!r}; "
            f"registered: {registered_names(kind)}"
        )
    return factory(config, ctx if ctx is not None else BuildContext())


# --------------------------------------------------------------------- #
# Builtin factories. Each replicates, argument for argument, the
# construction the pre-registry ``Machine._build_*_predictor`` chains
# performed for the same config — the byte-identity pin depends on it.
# --------------------------------------------------------------------- #
def _dppred_factory(shadow: bool, action: str) -> Factory:
    def _build(cfg, ctx: BuildContext):
        return DeadPagePredictor(
            DpPredConfig(
                pc_hash_bits=cfg.dppred_pc_bits,
                vpn_hash_bits=cfg.dppred_vpn_bits,
                threshold=cfg.dppred_threshold,
                shadow_entries=cfg.dppred_shadow_entries if shadow else 0,
                action=action,
            )
        )

    return _build


register(KIND_TLB, "dppred", _dppred_factory(shadow=True, action="bypass"))
register(KIND_TLB, "dppred_sh", _dppred_factory(shadow=False, action="bypass"))
register(
    KIND_TLB, "dppred_demote", _dppred_factory(shadow=True, action="demote")
)


@register(KIND_TLB, "ship")
def _build_ship_tlb(cfg, ctx: BuildContext):
    return ShipTlbPredictor(
        ShipConfig(signature_bits=cfg.ship_tlb_signature_bits)
    )


@register(KIND_TLB, "aip")
def _build_aip_tlb(cfg, ctx: BuildContext):
    return AipTlbPredictor()


@register(KIND_TLB, "oracle")
def _build_oracle_tlb(cfg, ctx: BuildContext):
    if ctx.oracle_outcomes is None:
        return DoaRecordingListener()
    return OracleTlbListener(ctx.oracle_outcomes)


@register(KIND_TLB, "distance_prefetch")
def _build_prefetch_tlb(cfg, ctx: BuildContext):
    # The machine attaches the page-table resolver post-construction.
    return DistanceTlbPrefetcher()


@register(KIND_TLB, "leeway")
def _build_leeway_tlb(cfg, ctx: BuildContext):
    return LeewayTlbPredictor(
        LeewayConfig(
            signature_bits=cfg.leeway_signature_bits,
            percentile=cfg.leeway_percentile,
        ),
        context=ctx.context,
    )


@register(KIND_TLB, "perceptron")
def _build_perceptron_tlb(cfg, ctx: BuildContext):
    return PerceptronTlbPredictor(
        PerceptronConfig(
            table_bits=cfg.perceptron_table_bits,
            threshold=cfg.perceptron_threshold,
        ),
        context=ctx.context,
    )


def _cbpred_factory(use_pfq: bool) -> Factory:
    def _build(cfg, ctx: BuildContext):
        return CorrelatingDeadBlockPredictor(
            CbPredConfig(
                bhist_entries=cfg.cbpred_bhist_entries,
                threshold=cfg.cbpred_threshold,
                pfq_entries=cfg.cbpred_pfq_entries,
                use_pfq=use_pfq,
            )
        )

    return _build


register(KIND_LLC, "cbpred", _cbpred_factory(use_pfq=True))
register(KIND_LLC, "cbpred_nopfq", _cbpred_factory(use_pfq=False))


@register(KIND_LLC, "ship")
def _build_ship_llc(cfg, ctx: BuildContext):
    return ShipCachePredictor(
        ctx.context, ShipConfig(signature_bits=cfg.ship_llc_signature_bits)
    )


@register(KIND_LLC, "aip")
def _build_aip_llc(cfg, ctx: BuildContext):
    return AipCachePredictor(ctx.context)


@register(KIND_LLC, "oracle")
def _build_oracle_llc(cfg, ctx: BuildContext):
    if ctx.llc_oracle_outcomes is None:
        return DoaRecordingCacheListener()
    return OracleCacheListener(ctx.llc_oracle_outcomes)


@register(KIND_LLC, "leeway")
def _build_leeway_llc(cfg, ctx: BuildContext):
    return LeewayCachePredictor(
        LeewayConfig(
            signature_bits=cfg.leeway_signature_bits,
            percentile=cfg.leeway_percentile,
        ),
        context=ctx.context,
    )


@register(KIND_LLC, "perceptron")
def _build_perceptron_llc(cfg, ctx: BuildContext):
    return PerceptronCachePredictor(
        PerceptronConfig(
            table_bits=cfg.perceptron_table_bits,
            threshold=cfg.perceptron_threshold,
        ),
        context=ctx.context,
    )
