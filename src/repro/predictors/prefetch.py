"""Distance-based TLB prefetching [Kandiraju & Sivasubramaniam, ISCA'02].

A related-work baseline the paper discusses (Section VII): "Kandiraju et
al. described three prefetching algorithms for TLBs, among which
distance-based prefetching gives the best performance for most workloads.
However, prefetching does not perform well across all applications."

The classic scheme keeps a Markov table over *distances* between
consecutive demand VPNs: on a demand fill at distance ``d`` from the
previous miss, the table's entry for the previous distance is trained to
``d``, and the entries reachable from ``d`` are used to prefetch
``vpn + d'`` translations into the LLT. Prefetches resolve through the
page table off the critical path (no latency charged) and only for pages
the OS has already mapped — a prefetch must not fault.

This composes with the paper's study as an alternative way to spend
hardware on the LLT: prefetching *adds* entries ahead of use, dpPred
*avoids* useless entries; `experiments/extensions.py` compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.stats import Stats
from repro.vm.tlb import Tlb, TlbEntry, TlbListener


@dataclass(frozen=True)
class DistancePrefetcherConfig:
    """Knobs for the distance prefetcher."""

    table_entries: int = 256       # distance-indexed Markov table
    prefetch_degree: int = 2       # successors fetched per demand miss
    max_distance: int = 64         # |d| beyond this is noise, not trained

    def validate(self) -> None:
        if self.table_entries <= 0:
            raise ValueError("table_entries must be positive")
        if self.prefetch_degree <= 0:
            raise ValueError("prefetch_degree must be positive")
        if self.max_distance <= 0:
            raise ValueError("max_distance must be positive")


class DistanceTlbPrefetcher(TlbListener):
    """Markov-over-distances TLB prefetcher attached to the LLT.

    ``resolver`` maps a VPN to its PFN if (and only if) the page is
    already mapped; the machine wires it to the page table's non-faulting
    ``lookup``.
    """

    def __init__(
        self,
        config: DistancePrefetcherConfig = DistancePrefetcherConfig(),
        resolver: Optional[Callable[[int], Optional[int]]] = None,
    ):
        config.validate()
        self.config = config
        self.resolver = resolver
        # distance -> list of successor distances (most recent first).
        self._table: Dict[int, List[int]] = {}
        self._last_vpn: Optional[int] = None
        self._last_distance: Optional[int] = None
        self._prefetching = False
        self.stats = Stats()

    # ------------------------------------------------------------------ #
    # Training + trigger
    # ------------------------------------------------------------------ #
    def _table_key(self, distance: int) -> int:
        return distance % self.config.table_entries

    def _train(self, distance: int) -> None:
        if self._last_distance is None:
            return
        key = self._table_key(self._last_distance)
        successors = self._table.setdefault(key, [])
        if distance in successors:
            successors.remove(distance)
        successors.insert(0, distance)
        del successors[self.config.prefetch_degree:]
        self.stats.add("trainings")

    def filled(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if self._prefetching:
            entry.aux = "prefetched"
            return
        vpn = entry.vpn
        if self._last_vpn is not None:
            distance = vpn - self._last_vpn
            if 0 < abs(distance) <= self.config.max_distance:
                self._train(distance)
                self._issue_prefetches(tlb, vpn, distance, now)
                self._last_distance = distance
            else:
                self._last_distance = None
        self._last_vpn = vpn

    def on_hit(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux == "prefetched":
            entry.aux = None
            self.stats.add("useful_prefetches")
            # The first touch of a prefetched page is a demand arrival:
            # keep the distance stream alive and prefetch ahead of it.
            vpn = entry.vpn
            if self._last_vpn is not None:
                distance = vpn - self._last_vpn
                if 0 < abs(distance) <= self.config.max_distance:
                    self._train(distance)
                    self._issue_prefetches(tlb, vpn, distance, now)
                    self._last_distance = distance
                else:
                    self._last_distance = None
            self._last_vpn = vpn

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        if entry.aux == "prefetched":
            self.stats.add("wasted_prefetches")

    # ------------------------------------------------------------------ #
    # Prefetch issue
    # ------------------------------------------------------------------ #
    def _issue_prefetches(
        self, tlb: Tlb, vpn: int, distance: int, now: int
    ) -> None:
        if self.resolver is None:
            return
        successors = self._table.get(self._table_key(distance), [])
        self._prefetching = True
        try:
            for d in successors:
                target = vpn + d
                if target < 0 or tlb.probe(target) is not None:
                    continue
                pfn = self.resolver(target)
                if pfn is None:
                    continue  # not mapped: a prefetch must not fault
                tlb.fill(target, pfn, 0, now)
                self.stats.add("prefetches_issued")
        finally:
            self._prefetching = False

    @property
    def usefulness(self) -> float:
        issued = self.stats.get("prefetches_issued")
        if not issued:
            return 0.0
        return self.stats.get("useful_prefetches") / issued
