"""Predictors beyond the paper's core pair: baselines, extensions, registry.

The paper's own dpPred/cbPred live in :mod:`repro.core`; this package
holds the baselines the evaluation compares against (SHiP, AIP, the
two-pass oracle, distance prefetching), the frontier predictors (Leeway,
hashed perceptron), and the :mod:`~repro.predictors.registry` that maps
config names to all of them.
"""

from repro.predictors.aip import AipCachePredictor, AipConfig, AipTlbPredictor
from repro.predictors.base import AccessContext, PredictorSpec
from repro.predictors.leeway import (
    LeewayCachePredictor,
    LeewayConfig,
    LeewayTlbPredictor,
)
from repro.predictors.oracle import (
    DoaRecordingCacheListener,
    DoaRecordingListener,
    OracleCacheListener,
    OracleTlbListener,
)
from repro.predictors.perceptron import (
    PerceptronCachePredictor,
    PerceptronConfig,
    PerceptronTlbPredictor,
)
from repro.predictors.prefetch import (
    DistancePrefetcherConfig,
    DistanceTlbPrefetcher,
)
from repro.predictors.registry import (
    KIND_LLC,
    KIND_TLB,
    BuildContext,
    build,
    is_registered,
    register,
    registered_names,
    unregister,
)
from repro.predictors.ship import ShipCachePredictor, ShipConfig, ShipTlbPredictor

__all__ = [
    "AipCachePredictor",
    "AipConfig",
    "AipTlbPredictor",
    "AccessContext",
    "PredictorSpec",
    "BuildContext",
    "DoaRecordingCacheListener",
    "DoaRecordingListener",
    "OracleCacheListener",
    "OracleTlbListener",
    "DistancePrefetcherConfig",
    "DistanceTlbPrefetcher",
    "LeewayCachePredictor",
    "LeewayConfig",
    "LeewayTlbPredictor",
    "PerceptronCachePredictor",
    "PerceptronConfig",
    "PerceptronTlbPredictor",
    "ShipCachePredictor",
    "ShipConfig",
    "ShipTlbPredictor",
    "KIND_LLC",
    "KIND_TLB",
    "build",
    "is_registered",
    "register",
    "registered_names",
    "unregister",
]
