"""Baseline predictors the paper compares against: SHiP, AIP, and oracles."""

from repro.predictors.aip import AipCachePredictor, AipConfig, AipTlbPredictor
from repro.predictors.base import AccessContext
from repro.predictors.oracle import (
    DoaRecordingCacheListener,
    DoaRecordingListener,
    OracleCacheListener,
    OracleTlbListener,
)
from repro.predictors.prefetch import (
    DistancePrefetcherConfig,
    DistanceTlbPrefetcher,
)
from repro.predictors.ship import ShipCachePredictor, ShipConfig, ShipTlbPredictor

__all__ = [
    "AipCachePredictor",
    "AipConfig",
    "AipTlbPredictor",
    "AccessContext",
    "DoaRecordingCacheListener",
    "DoaRecordingListener",
    "OracleCacheListener",
    "OracleTlbListener",
    "DistancePrefetcherConfig",
    "DistanceTlbPrefetcher",
    "ShipCachePredictor",
    "ShipConfig",
    "ShipTlbPredictor",
]
