"""Virtual-memory substrate: TLBs, page table, walk caches, frame allocator."""

from repro.vm.pagetable import (
    ENTRIES_PER_NODE,
    LEVEL_BITS,
    NUM_LEVELS,
    PTE_SIZE,
    VPN_BITS,
    RadixPageTable,
)
from repro.vm.physmem import PAGE_SHIFT, PAGE_SIZE, FrameAllocator, OutOfPhysicalMemory
from repro.vm.pwc import PageWalkCaches
from repro.vm.tlb import (
    FILL_ALLOCATE,
    FILL_BYPASS,
    FILL_DISTANT,
    Tlb,
    TlbEntry,
    TlbListener,
)
from repro.vm.walker import BLOCK_SHIFT, PageTableWalker

__all__ = [
    "ENTRIES_PER_NODE",
    "LEVEL_BITS",
    "NUM_LEVELS",
    "PTE_SIZE",
    "VPN_BITS",
    "RadixPageTable",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "FrameAllocator",
    "OutOfPhysicalMemory",
    "PageWalkCaches",
    "FILL_ALLOCATE",
    "FILL_BYPASS",
    "FILL_DISTANT",
    "Tlb",
    "TlbEntry",
    "TlbListener",
    "PageTableWalker",
    "BLOCK_SHIFT",
]
