"""Set-associative TLB model with predictor hooks.

Used for the L1 I-TLB, L1 D-TLB, and the L2 TLB (the paper's LLT). The
LLT attaches a :class:`TlbListener` — dpPred, or one of the adapted cache
dead-block predictors (SHiP-TLB, AIP-TLB) — which can observe hits,
evictions and fills, bypass an incoming translation, demote an insertion to
the LRU/distant position, or serve a miss from a victim buffer (dpPred's
shadow table).

Per-entry metadata is exactly what the paper adds: an ``Accessed`` bit set
on the first hit, and a small hash of the PC of the instruction that
brought the entry in (stored at fill time; Section V-A).

Multi-tenant scenarios tag every entry with an ASID. Tags are stored as a
single combined key ``(asid << VPN_BITS) | vpn`` so that ASID-0 (the only
address space single-tenant runs ever use) keys are bit-identical to the
raw VPNs the rest of the simulator — including the batched engine's numpy
mirrors — already handles. Two further key namespaces share the same tag
dicts: *global* pages (kernel-style mappings valid under every ASID) and
2 MB *huge* pages (one entry covering 512 consecutive VPNs; only the LLT
installs these — the L1 TLBs are filled with splintered 4 KB granules, as
several real cores do). Both extra probes are gated on per-TLB entry
counts, so single-tenant 4 KB-only runs never pay for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.bitops import is_power_of_two
from repro.common.residency import ResidencyTracker
from repro.common.stats import Stats
from repro.mem.replacement import LruPolicy, ReplacementPolicy, make_policy
from repro.vm.pagetable import LEVEL_BITS, VPN_BITS

FILL_ALLOCATE = "allocate"
FILL_BYPASS = "bypass"
FILL_DISTANT = "distant"

#: Bits by which the ASID is folded into a combined tag key. VPNs are
#: < 2**VPN_BITS, so ASID-0 keys equal the raw VPN (bit-identity with
#: every pre-multi-tenant trace) and distinct ASIDs never collide.
ASID_SHIFT = VPN_BITS
#: 2 MB huge pages span 2**LEVEL_BITS (512) base pages.
HUGE_SPAN_BITS = LEVEL_BITS
_HUGE_OFFSET_MASK = (1 << HUGE_SPAN_BITS) - 1
#: Disjoint high-bit namespaces for global and huge keys. Both sit far
#: above any combined (asid, vpn) key a real access can produce.
GLOBAL_KEY_BASE = 1 << 61
HUGE_KEY_BASE = 1 << 62


def tlb_key(vpn: int, asid: int) -> int:
    """Combined tag key for a 4 KB translation (== ``vpn`` at ASID 0)."""
    return vpn if asid == 0 else (asid << ASID_SHIFT) | vpn


class TlbEntry:
    """One TLB entry: translation plus the paper's predictor metadata."""

    __slots__ = (
        "vpn", "pfn", "pc_hash", "accessed", "aux",
        "asid", "global_page", "huge",
    )

    def __init__(
        self,
        vpn: int,
        pfn: int,
        pc_hash: int,
        asid: int = 0,
        global_page: bool = False,
        huge: bool = False,
    ):
        self.vpn = vpn
        self.pfn = pfn
        self.pc_hash = pc_hash
        self.accessed = False
        self.aux = None
        self.asid = asid
        self.global_page = global_page
        self.huge = huge

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TlbEntry(vpn={self.vpn:#x}, pfn={self.pfn:#x}, "
            f"pc_hash={self.pc_hash:#x}, accessed={self.accessed})"
        )


# --------------------------------------------------------------------- #
# TlbEntry flyweight pool
#
# The flat engine tier fills TLBs on every miss; on walk-heavy suites
# that is tens of thousands of short-lived TlbEntry objects per run.
# Evicted entries are returned here once the flat tier has finished
# eviction-time predictor training (nothing retains entry references
# past that point — the same-page filter slots are identity-checked at
# release), and the next flat fill reuses them reset-in-place. The
# scalar ``Tlb.fill`` path keeps allocating: its victims escape to
# callers (shootdown results, listener hooks) whose lifetime this
# module cannot see. The cap only bounds idle pool memory.
# --------------------------------------------------------------------- #
_ENTRY_POOL: List[TlbEntry] = []
_ENTRY_POOL_CAP = 8192


def acquire_entry(vpn: int, pfn: int, pc_hash: int) -> TlbEntry:
    """Pop a reset TlbEntry from the pool, or allocate a fresh one."""
    pool = _ENTRY_POOL
    if pool:
        entry = pool.pop()
        entry.vpn = vpn
        entry.pfn = pfn
        entry.pc_hash = pc_hash
        entry.accessed = False
        entry.aux = None
        entry.asid = 0
        entry.global_page = False
        entry.huge = False
        return entry
    return TlbEntry(vpn, pfn, pc_hash)


def release_entry(entry: Optional[TlbEntry]) -> None:
    """Return an evicted TlbEntry to the pool (drops it when full)."""
    if entry is not None and len(_ENTRY_POOL) < _ENTRY_POOL_CAP:
        _ENTRY_POOL.append(entry)


class TlbListener:
    """Predictor-side hooks; the default implementation is a no-op."""

    def on_lookup(self, tlb: "Tlb", set_idx: int, now: int) -> None:
        """Any lookup touched ``set_idx`` (hit or miss). Used by interval-
        counting predictors such as AIP."""

    def on_hit(self, tlb: "Tlb", entry: TlbEntry, now: int) -> None:
        """A lookup hit ``entry``."""

    def on_miss(self, tlb: "Tlb", vpn: int, now: int) -> Optional[int]:
        """A lookup missed. May return a PFN served from a victim buffer
        (shadow table); returning a PFN suppresses the page walk."""
        return None

    def on_fill(
        self, tlb: "Tlb", vpn: int, pfn: int, pc_hash: int, now: int
    ) -> str:
        """An incoming translation is about to be installed.

        Returns ``"allocate"``, ``"bypass"``, or ``"distant"``.
        """
        return FILL_ALLOCATE

    def filled(self, tlb: "Tlb", entry: TlbEntry, now: int) -> None:
        """``entry`` was installed (not called on bypass)."""

    def on_evict(self, tlb: "Tlb", entry: TlbEntry, now: int) -> None:
        """``entry`` is being evicted (training opportunity)."""

    def choose_victim(
        self, tlb: "Tlb", set_idx: int, entries: List[Optional[TlbEntry]], now: int
    ) -> Optional[int]:
        """Override victim selection for a full set (see CacheListener)."""
        return None


class Tlb:
    """A set-associative TLB."""

    def __init__(
        self,
        name: str,
        num_entries: int,
        assoc: int,
        policy: str = "lru",
        listener: Optional[TlbListener] = None,
        track_residency: bool = False,
    ):
        if num_entries % assoc != 0:
            raise ValueError(
                f"{name}: entries {num_entries} not divisible by assoc {assoc}"
            )
        num_sets = num_entries // assoc
        if not is_power_of_two(num_sets):
            raise ValueError(
                f"{name}: num_sets {num_sets} must be a power of two"
            )
        self.name = name
        self.num_entries = num_entries
        self.num_sets = num_sets
        self.assoc = assoc
        self._set_mask = num_sets - 1
        self.policy: ReplacementPolicy = make_policy(policy, num_sets, assoc)
        # None (no predictor attached — the L1 TLBs, baseline LLTs) lets
        # the access path skip listener dispatch instead of no-op calls.
        self.listener = listener
        self._entries: List[List[Optional[TlbEntry]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._tags: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self.stats = Stats()
        # Hot-path aliases (see SetAssocCache): inline counter bumps and
        # bound policy hooks; the policy never changes after construction.
        # Counters are pre-seeded so bumps are plain `+= 1`, no .get().
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("hits", "misses", "victim_buffer_hits", "fills", "evictions",
             "bypasses", "invalidations"), 0,
        ))
        self._policy_on_hit = self.policy.on_hit
        self._policy_on_fill = self.policy.on_fill
        self._policy_victim = self.policy.victim
        # LRU (the default) gets its stamp updates fused into the access
        # path — same state transitions, no method dispatch.
        self._lru = (
            self.policy if type(self.policy) is LruPolicy else None
        )
        self._lru_stamps = (
            self._lru._stamp if self._lru is not None else None
        )
        # Incremental min-stamp victim tracking (LRU only) — see
        # SetAssocCache: a cached (way, stamp) candidate per set, valid
        # while the stamp is unchanged (stamps only grow), re-pointed
        # explicitly on distant insertions (which write below the min).
        self._vic_way: List[int] = [-1] * num_sets
        self._vic_stamp: List[int] = [0] * num_sets
        self.residency: Optional[ResidencyTracker] = (
            ResidencyTracker() if track_residency else None
        )
        # Optional back-reference to the page-walk caches fed by walks
        # that refill this TLB (the machine wires it on the LLT). A
        # shootdown through :meth:`invalidate`/:meth:`invalidate_asid`/
        # :meth:`invalidate_all` must also drop the PWC's partial-walk
        # entries for the same region — otherwise a remap after the
        # shootdown can resolve through stale paging-structure entries.
        self.pwc = None
        # Resident-entry counts for the extra key namespaces: the global
        # and huge probes in :meth:`lookup` are skipped while these are
        # zero, keeping the single-tenant 4 KB miss path unchanged.
        self._global_count = 0
        self._huge_count = 0
        # Monotone membership version: bumped whenever the set of resident
        # (vpn -> pfn) pairs changes (install, eviction, invalidation).
        # Hits never bump it, so the batched engine's numpy mirror of the
        # contents (see :meth:`mirror_into`) stays valid across arbitrarily
        # long all-hit stretches and is rebuilt only after a real refill.
        self.content_version = 0

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def probe(self, vpn: int, asid: int = 0) -> Optional[TlbEntry]:
        """Tag check with no side effects (4 KB namespace only)."""
        key = vpn if asid == 0 else (asid << ASID_SHIFT) | vpn
        set_idx = key & self._set_mask
        way = self._tags[set_idx].get(key)
        return None if way is None else self._entries[set_idx][way]

    def probe_translation(self, vpn: int, asid: int = 0) -> Optional[TlbEntry]:
        """Side-effect-free probe across all three namespaces, in the
        same precedence order as :meth:`lookup`: exact 4 KB entry, then a
        covering huge entry, then a global mapping."""
        entry = self.probe(vpn, asid)
        if entry is not None:
            return entry
        if self._huge_count:
            hkey = HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
            hset = hkey & self._set_mask
            hway = self._tags[hset].get(hkey)
            if hway is not None:
                return self._entries[hset][hway]
        if self._global_count:
            gkey = GLOBAL_KEY_BASE | vpn
            gset = gkey & self._set_mask
            gway = self._tags[gset].get(gkey)
            if gway is not None:
                return self._entries[gset][gway]
        return None

    def _record_hit(self, set_idx: int, way: int, entry: TlbEntry, now: int):
        """Bookkeeping shared by every hit namespace (4 KB/huge/global)."""
        self._stat["hits"] += 1
        entry.accessed = True
        lru = self._lru
        if lru is not None:
            lru._clock += 1
            self._lru_stamps[set_idx][way] = lru._clock
        else:
            self._policy_on_hit(set_idx, way)
        if self.residency is not None:
            self.residency.hit((set_idx, way), now)
        if self.listener is not None:
            self.listener.on_hit(self, entry, now)

    def lookup(self, vpn: int, now: int, asid: int = 0) -> Optional[int]:
        """Translate ``vpn`` under ``asid``. Returns the PFN on a hit
        (including a hit in the listener's victim buffer, a covering huge
        entry, or a global mapping) or None on a genuine miss."""
        key = vpn if asid == 0 else (asid << ASID_SHIFT) | vpn
        set_idx = key & self._set_mask
        listener = self.listener
        if listener is not None:
            listener.on_lookup(self, set_idx, now)
        stat = self._stat
        way = self._tags[set_idx].get(key)
        if way is not None:
            entry = self._entries[set_idx][way]
            stat["hits"] += 1
            entry.accessed = True
            lru = self._lru
            if lru is not None:
                lru._clock += 1
                self._lru_stamps[set_idx][way] = lru._clock
            else:
                self._policy_on_hit(set_idx, way)
            if self.residency is not None:
                self.residency.hit((set_idx, way), now)
            if listener is not None:
                listener.on_hit(self, entry, now)
            return entry.pfn
        if self._huge_count:
            hkey = HUGE_KEY_BASE | (
                tlb_key(vpn >> HUGE_SPAN_BITS, asid)
            )
            hset = hkey & self._set_mask
            hway = self._tags[hset].get(hkey)
            if hway is not None:
                entry = self._entries[hset][hway]
                self._record_hit(hset, hway, entry, now)
                return entry.pfn + (vpn & _HUGE_OFFSET_MASK)
        if self._global_count:
            gkey = GLOBAL_KEY_BASE | vpn
            gset = gkey & self._set_mask
            gway = self._tags[gset].get(gkey)
            if gway is not None:
                entry = self._entries[gset][gway]
                self._record_hit(gset, gway, entry, now)
                return entry.pfn
        stat["misses"] += 1
        if listener is None:
            return None
        buffered = listener.on_miss(self, key, now)
        if buffered is not None:
            stat["victim_buffer_hits"] += 1
        return buffered

    def fill(
        self,
        vpn: int,
        pfn: int,
        pc_hash: int,
        now: int,
        asid: int = 0,
        global_page: bool = False,
        huge: bool = False,
    ) -> Optional[TlbEntry]:
        """Install a completed translation; returns the evicted entry.

        ``huge`` installs one entry covering ``vpn``'s whole 2 MB region;
        ``pfn`` must then be the region's 512-aligned base frame.
        ``global_page`` installs into the ASID-blind global namespace.
        """
        if huge:
            key = HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
        elif global_page:
            key = GLOBAL_KEY_BASE | vpn
        else:
            key = vpn if asid == 0 else (asid << ASID_SHIFT) | vpn
        set_idx = key & self._set_mask
        tags = self._tags[set_idx]
        if key in tags:
            return None
        listener = self.listener
        distant = False
        if listener is not None:
            decision = listener.on_fill(self, key, pfn, pc_hash, now)
            if decision == FILL_BYPASS:
                self._stat["bypasses"] += 1
                return None
            distant = decision == FILL_DISTANT

        entries = self._entries[set_idx]
        victim: Optional[TlbEntry] = None
        way = None
        # len(tags) counts valid entries; a full set skips the scan.
        if len(tags) < self.assoc:
            for w, existing in enumerate(entries):
                if existing is None:
                    way = w
                    break
        lru = self._lru
        if way is None:
            if listener is not None:
                way = listener.choose_victim(self, set_idx, entries, now)
            if way is None:
                if lru is not None:
                    row = self._lru_stamps[set_idx]
                    way = self._vic_way[set_idx]
                    if way >= 0 and row[way] == self._vic_stamp[set_idx]:
                        self._vic_way[set_idx] = -1
                    else:
                        way = 0
                        best = row[0]
                        run_way = -1
                        run_stamp = 0
                        for w in range(1, self.assoc):
                            s = row[w]
                            if s < best:
                                run_way, run_stamp = way, best
                                way, best = w, s
                            elif run_way < 0 or s < run_stamp:
                                run_way, run_stamp = w, s
                        self._vic_way[set_idx] = run_way
                        self._vic_stamp[set_idx] = run_stamp
                else:
                    way = self._policy_victim(set_idx)
            victim = self._evict_way(set_idx, way, now)

        entry = TlbEntry(key, pfn, pc_hash, asid, global_page, huge)
        entries[way] = entry
        tags[key] = way
        self.content_version += 1
        if huge:
            self._huge_count += 1
        elif global_page:
            self._global_count += 1
        if lru is not None and not distant:
            lru._clock += 1
            self._lru_stamps[set_idx][way] = lru._clock
        else:
            self._policy_on_fill(set_idx, way, distant=distant)
            if lru is not None:
                # Distant insertion wrote a below-min stamp at ``way``.
                self._vic_way[set_idx] = way
                self._vic_stamp[set_idx] = self._lru_stamps[set_idx][way]
        self._stat["fills"] += 1
        if self.residency is not None:
            self.residency.fill((set_idx, way), now)
        if listener is not None:
            listener.filled(self, entry, now)
        return victim

    def invalidate(
        self, vpn: int, now: int, asid: int = 0
    ) -> Optional[TlbEntry]:
        """Shoot down ``vpn`` under ``asid`` (INVLPG semantics).

        Drops the exact 4 KB entry, any covering huge entry, and any
        global entry for ``vpn`` — and invalidates the page-walk caches'
        partial translations for the region when a PWC is attached, so a
        post-shootdown remap cannot resolve through stale paging-structure
        entries. Returns the most specific entry evicted, or None.
        """
        evicted: Optional[TlbEntry] = None
        key = vpn if asid == 0 else (asid << ASID_SHIFT) | vpn
        set_idx = key & self._set_mask
        way = self._tags[set_idx].get(key)
        if way is not None:
            self._stat["invalidations"] += 1
            evicted = self._evict_way(set_idx, way, now, external=True)
        if self._huge_count:
            hkey = HUGE_KEY_BASE | tlb_key(vpn >> HUGE_SPAN_BITS, asid)
            hset = hkey & self._set_mask
            hway = self._tags[hset].get(hkey)
            if hway is not None:
                self._stat["invalidations"] += 1
                entry = self._evict_way(hset, hway, now, external=True)
                evicted = evicted or entry
        if self._global_count:
            gkey = GLOBAL_KEY_BASE | vpn
            gset = gkey & self._set_mask
            gway = self._tags[gset].get(gkey)
            if gway is not None:
                self._stat["invalidations"] += 1
                entry = self._evict_way(gset, gway, now, external=True)
                evicted = evicted or entry
        if self.pwc is not None:
            self.pwc.invalidate(vpn, asid)
        return evicted

    def invalidate_asid(self, asid: int, now: int) -> int:
        """Shoot down every non-global entry tagged ``asid``; returns the
        number of entries dropped. Also clears the attached PWC's entries
        for that address space (ASID-recycle semantics)."""
        dropped = 0
        for set_idx, ways in enumerate(self._entries):
            for way, entry in enumerate(ways):
                if (
                    entry is not None
                    and entry.asid == asid
                    and not entry.global_page
                ):
                    self._stat["invalidations"] += 1
                    self._evict_way(set_idx, way, now, external=True)
                    dropped += 1
        if self.pwc is not None:
            self.pwc.invalidate_asid(asid)
        return dropped

    def invalidate_all(self, now: int, keep_global: bool = True) -> int:
        """Broadcast shootdown: drop every entry (globals survive unless
        ``keep_global=False``, mirroring CR3 reload vs full flush).
        Flushes the attached PWC entirely. Returns entries dropped."""
        dropped = 0
        for set_idx, ways in enumerate(self._entries):
            for way, entry in enumerate(ways):
                if entry is None:
                    continue
                if keep_global and entry.global_page:
                    continue
                self._stat["invalidations"] += 1
                self._evict_way(set_idx, way, now, external=True)
                dropped += 1
        if self.pwc is not None:
            self.pwc.flush()
        return dropped

    def _evict_way(
        self, set_idx: int, way: int, now: int, external: bool = False
    ) -> TlbEntry:
        entry = self._entries[set_idx][way]
        assert entry is not None
        del self._tags[set_idx][entry.vpn]
        self._entries[set_idx][way] = None
        self.content_version += 1
        self._stat["evictions"] += 1
        if entry.huge:
            self._huge_count -= 1
        elif entry.global_page:
            self._global_count -= 1
        if self.residency is not None:
            self.residency.evict((set_idx, way), now)
        if external:
            self.policy.on_invalidate(set_idx, way)
        if self.listener is not None:
            self.listener.on_evict(self, entry, now)
        return entry

    # ------------------------------------------------------------------ #
    # Vectorized-engine support
    # ------------------------------------------------------------------ #
    def mirror_into(self, tags, pfns) -> None:
        """Export the current contents into (num_sets, assoc) numpy arrays.

        ``tags`` receives each resident entry's VPN (empty ways keep
        whatever sentinel the caller pre-filled), ``pfns`` the matching
        PFN. The batched engine keys its array-at-a-time membership tests
        on these mirrors and revalidates them via :attr:`content_version`.
        """
        for set_idx, ways in enumerate(self._entries):
            for way, entry in enumerate(ways):
                if entry is not None:
                    tags[set_idx, way] = entry.vpn
                    pfns[set_idx, way] = entry.pfn

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        return sum(len(t) for t in self._tags)

    def resident_vpns(self) -> List[int]:
        return [
            e.vpn for ways in self._entries for e in ways if e is not None
        ]

    def flush_residency(self, now: int) -> None:
        if self.residency is not None:
            self.residency.flush(now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tlb({self.name}, entries={self.num_entries}, "
            f"assoc={self.assoc}, policy={self.policy.name()})"
        )
