"""Page-walk caches (PWCs): fully-associative caches of partial walks.

Table I: "3 levels, fully associative, Entries: 4 (L1), 8 (L2), 16 (L3),
Lat. (cycles): 1 (L1), 1 (L2), 2 (L3)".

Conventionally (Bhattacharjee, MICRO'13) the L1 PWC caches page-directory
entries — a hit resolves the top *three* radix levels so the walk needs a
single memory access (the PTE). The L2 PWC resolves the top two levels and
the L3 PWC the top one. Lookups try L1 first; the deepest hit wins; all
levels are refilled when a walk completes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.common.stats import Stats
from repro.vm.pagetable import LEVEL_BITS, NUM_LEVELS, VPN_BITS

#: ASIDs are folded into PWC tags above the VPN-prefix bits. Prefixes are
#: at most ``VPN_BITS - LEVEL_BITS`` wide, so ASID-0 tags stay the raw
#: prefixes (bit-identical to single-tenant behaviour) and distinct
#: address spaces never share partial-walk entries.
_ASID_SHIFT = VPN_BITS


class _FullyAssocLru:
    """A tiny fully-associative LRU cache of tags (no payload needed).

    ``_stamps`` is kept in recency order (least-recent first): stamps only
    ever increase, so the entry holding the minimum stamp is always the
    first key. Eviction is therefore O(1) ``popitem(last=False)`` instead
    of the old O(n) ``min()`` scan, and picks the identical victim.
    """

    __slots__ = ("capacity", "_stamps", "_clock")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._stamps: "OrderedDict[int, int]" = OrderedDict()
        self._clock = 0

    def lookup(self, tag: int) -> bool:
        stamps = self._stamps
        if tag in stamps:
            self._clock += 1
            stamps[tag] = self._clock
            stamps.move_to_end(tag)
            return True
        return False

    def fill(self, tag: int) -> None:
        stamps = self._stamps
        self._clock += 1
        if tag not in stamps and len(stamps) >= self.capacity:
            stamps.popitem(last=False)
        stamps[tag] = self._clock
        stamps.move_to_end(tag)

    def __len__(self) -> int:
        return len(self._stamps)


class PageWalkCaches:
    """The 3-level PWC stack consulted before a page walk.

    :meth:`consult` returns how many radix levels are already resolved
    (0..3) and the lookup latency paid. A walk that resolves ``k`` levels
    from the PWCs performs ``4 - k`` memory accesses, giving the paper's
    "1 to 3 memory accesses (on a hit to PWC)" range.
    """

    def __init__(
        self,
        entries: Tuple[int, int, int] = (4, 8, 16),
        latencies: Tuple[int, int, int] = (1, 1, 2),
    ):
        if len(entries) != 3 or len(latencies) != 3:
            raise ValueError("PWC needs exactly 3 levels of entries/latencies")
        # _levels[0] = L1 PWC (resolves 3 levels) ... _levels[2] = L3 PWC.
        self._levels = [_FullyAssocLru(n) for n in entries]
        self._latencies = list(latencies)
        self.stats = Stats()
        # Per-walk hot path: precomputed (level, resolved, tag shift, stat
        # key) tuples and the live counter dict, bumped inline.
        self._probe_plan = tuple(
            (
                self._levels[i],
                resolved,
                LEVEL_BITS * (NUM_LEVELS - resolved),
                self._latencies[i],
                f"pwc_l{i + 1}_hits",
            )
            for i, resolved in enumerate((3, 2, 1))
        )
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("pwc_l1_hits", "pwc_l2_hits", "pwc_l3_hits", "pwc_misses"), 0,
        ))

    @staticmethod
    def _tag(vpn: int, levels_resolved: int) -> int:
        """Tag covering the top ``levels_resolved`` radix levels of ``vpn``."""
        return vpn >> (LEVEL_BITS * (NUM_LEVELS - levels_resolved))

    def consult(
        self, vpn: int, asid: int = 0, max_resolved: int = NUM_LEVELS - 1
    ) -> Tuple[int, int]:
        """Returns ``(levels_resolved, lookup_latency)``.

        Tries the L1 PWC (3 levels resolved) down to the L3 PWC (1 level);
        latency accumulates over the levels actually probed.

        ``max_resolved`` caps the probe plan for walks that terminate
        early: a 2 MB huge walk has only 3 loads (the PD entry *is* the
        leaf), so resolving 3 levels from the L1 PWC would wrongly skip
        the leaf load — huge walks consult with ``max_resolved=2`` and
        the L1 PWC is neither probed nor charged.
        """
        latency = 0
        stat = self._stat
        if asid == 0:
            for level, resolved, shift, level_latency, hit_key in (
                self._probe_plan
            ):
                if resolved > max_resolved:
                    continue
                latency += level_latency
                if level.lookup(vpn >> shift):
                    stat[hit_key] += 1
                    return resolved, latency
        else:
            base = asid << _ASID_SHIFT
            for level, resolved, shift, level_latency, hit_key in (
                self._probe_plan
            ):
                if resolved > max_resolved:
                    continue
                latency += level_latency
                if level.lookup(base | (vpn >> shift)):
                    stat[hit_key] += 1
                    return resolved, latency
        stat["pwc_misses"] += 1
        return 0, latency

    def fill(
        self, vpn: int, asid: int = 0, max_resolved: int = NUM_LEVELS - 1
    ) -> None:
        """Install the completed walk's partial translations at every level
        the walk actually resolved (huge walks cap at ``max_resolved=2``:
        an L1-PWC entry would claim a page-table node that does not
        exist below the huge leaf)."""
        base = 0 if asid == 0 else asid << _ASID_SHIFT
        for level, resolved, shift, _latency, _key in self._probe_plan:
            if resolved > max_resolved:
                continue
            level.fill(base | (vpn >> shift))

    # ------------------------------------------------------------------ #
    # Shootdown support (see Tlb.invalidate / Machine.shootdown_*)
    # ------------------------------------------------------------------ #
    def invalidate(self, vpn: int, asid: int = 0) -> int:
        """Drop every partial-walk entry covering ``vpn`` under ``asid``
        (INVLPG also invalidates paging-structure caches for the address).
        Returns the number of entries dropped."""
        base = 0 if asid == 0 else asid << _ASID_SHIFT
        dropped = 0
        for level, _resolved, shift, _latency, _key in self._probe_plan:
            if level._stamps.pop(base | (vpn >> shift), None) is not None:
                dropped += 1
        if dropped:
            self.stats.add("pwc_invalidations", dropped)
        return dropped

    def invalidate_asid(self, asid: int) -> int:
        """Drop every entry belonging to ``asid`` (ASID recycle). Returns
        the number of entries dropped."""
        dropped = 0
        for level in self._levels:
            stale = [
                tag for tag in level._stamps if tag >> _ASID_SHIFT == asid
            ]
            for tag in stale:
                del level._stamps[tag]
            dropped += len(stale)
        if dropped:
            self.stats.add("pwc_invalidations", dropped)
        return dropped

    def flush(self) -> int:
        """Drop everything (broadcast shootdown). Returns entries dropped."""
        dropped = 0
        for level in self._levels:
            dropped += len(level._stamps)
            level._stamps.clear()
        if dropped:
            self.stats.add("pwc_invalidations", dropped)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = ", ".join(str(lvl.capacity) for lvl in self._levels)
        return f"PageWalkCaches(entries=[{sizes}])"
