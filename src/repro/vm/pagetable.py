"""Four-level radix page table materialised in simulated physical memory.

Mirrors the x86-64 structure the paper adds to Sniper: "we allocate a
four-level radix tree data structure as the page table. The page table
contents are cached on the processor caches as in the real hardware."

Each node is one 4 KB frame of 512 eight-byte entries; a walk touches one
entry per level, and the walker turns those entry addresses into cache
accesses. Translations (and intermediate nodes) are created on first touch
— the OS page-fault path — using the :class:`~repro.vm.physmem.FrameAllocator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.stats import Stats
from repro.vm.physmem import PAGE_SHIFT, FrameAllocator

#: Radix bits per level (x86-64: 9 bits -> 512 entries per node).
LEVEL_BITS = 9
ENTRIES_PER_NODE = 1 << LEVEL_BITS
PTE_SIZE = 8
#: Number of tree levels (PML4, PDPT, PD, PT).
NUM_LEVELS = 4
#: VPN width covered by the tree (36 bits -> 48-bit virtual addresses).
VPN_BITS = LEVEL_BITS * NUM_LEVELS

#: Right-shift per level to reach its radix index (root first); walk-path
#: hot loop uses these instead of recomputing the arithmetic per level.
_LEVEL_SHIFTS = tuple(
    LEVEL_BITS * (NUM_LEVELS - 1 - level) for level in range(NUM_LEVELS)
)
_IDX_MASK = ENTRIES_PER_NODE - 1


class _Node:
    """One radix-tree node: a physical frame plus its children."""

    __slots__ = ("frame", "children")

    def __init__(self, frame: int):
        self.frame = frame
        self.children: Dict[int, object] = {}


class RadixPageTable:
    """x86-64-style 4-level page table with demand population."""

    def __init__(self, allocator: Optional[FrameAllocator] = None):
        self.allocator = allocator or FrameAllocator()
        self._root = _Node(self.allocator.allocate())
        self.stats = Stats()

    @staticmethod
    def level_index(vpn: int, level: int) -> int:
        """Index into the ``level``-th node (level 0 = root/PML4)."""
        shift = LEVEL_BITS * (NUM_LEVELS - 1 - level)
        return (vpn >> shift) & (ENTRIES_PER_NODE - 1)

    def lookup(self, vpn: int) -> Optional[int]:
        """Translate without allocating. Returns PFN or None."""
        node = self._root
        for level in range(NUM_LEVELS - 1):
            child = node.children.get(self.level_index(vpn, level))
            if child is None:
                return None
            node = child  # type: ignore[assignment]
        return node.children.get(self.level_index(vpn, NUM_LEVELS - 1))

    def translate(self, vpn: int) -> int:
        """Translate ``vpn``, allocating the mapping on first touch."""
        pfn, _ = self.walk_path(vpn)
        return pfn

    def walk_path(self, vpn: int) -> Tuple[int, List[int]]:
        """Translate ``vpn`` and return the PTE physical addresses touched.

        Returns ``(pfn, [pte_paddr_level0, ..., pte_paddr_level3])`` — the
        four physical addresses a full hardware walk loads, root first.
        Missing nodes/mappings are created (demand paging).
        """
        if vpn < 0 or vpn >= (1 << VPN_BITS):
            raise ValueError(f"vpn {vpn:#x} outside {VPN_BITS}-bit space")
        path: List[int] = []
        append = path.append
        node = self._root
        for shift in _LEVEL_SHIFTS[:-1]:
            idx = (vpn >> shift) & _IDX_MASK
            append((node.frame << PAGE_SHIFT) | (idx * PTE_SIZE))
            child = node.children.get(idx)
            if child is None:
                child = _Node(self.allocator.allocate())
                node.children[idx] = child
                self.stats.add("nodes_allocated")
            node = child  # type: ignore[assignment]
        idx = vpn & _IDX_MASK
        append((node.frame << PAGE_SHIFT) | (idx * PTE_SIZE))
        pfn = node.children.get(idx)
        if pfn is None:
            pfn = self.allocator.allocate()
            node.children[idx] = pfn
            self.stats.add("pages_mapped")
        return pfn, path

    @property
    def pages_mapped(self) -> int:
        return self.stats.get("pages_mapped")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RadixPageTable(pages_mapped={self.pages_mapped})"
