"""Four-level radix page table materialised in simulated physical memory.

Mirrors the x86-64 structure the paper adds to Sniper: "we allocate a
four-level radix tree data structure as the page table. The page table
contents are cached on the processor caches as in the real hardware."

Each node is one 4 KB frame of 512 eight-byte entries; a walk touches one
entry per level, and the walker turns those entry addresses into cache
accesses. Translations (and intermediate nodes) are created on first touch
— the OS page-fault path — using the :class:`~repro.vm.physmem.FrameAllocator`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.stats import Stats
from repro.vm.physmem import PAGE_SHIFT, FrameAllocator

#: Radix bits per level (x86-64: 9 bits -> 512 entries per node).
LEVEL_BITS = 9
ENTRIES_PER_NODE = 1 << LEVEL_BITS
PTE_SIZE = 8
#: Number of tree levels (PML4, PDPT, PD, PT).
NUM_LEVELS = 4
#: VPN width covered by the tree (36 bits -> 48-bit virtual addresses).
VPN_BITS = LEVEL_BITS * NUM_LEVELS

#: Right-shift per level to reach its radix index (root first); walk-path
#: hot loop uses these instead of recomputing the arithmetic per level.
_LEVEL_SHIFTS = tuple(
    LEVEL_BITS * (NUM_LEVELS - 1 - level) for level in range(NUM_LEVELS)
)
_IDX_MASK = ENTRIES_PER_NODE - 1


class _Node:
    """One radix-tree node: a physical frame plus its children."""

    __slots__ = ("frame", "children")

    def __init__(self, frame: int):
        self.frame = frame
        self.children: Dict[int, object] = {}


class _HugeLeaf:
    """A 2 MB mapping stored directly in a PD entry (leaf at level 2)."""

    __slots__ = ("base",)

    def __init__(self, base: int):
        self.base = base


def huge_region_policy(
    fraction: float, seed: int
) -> Callable[[int], bool]:
    """Deterministic huge-mapping decision: maps ``fraction`` of 2 MB
    regions hugely, chosen by a splitmix-style hash of the region number
    so the choice is stable across runs, processes, and resume."""
    threshold = int(fraction * (1 << 32))
    mixed_seed = (seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF

    def policy(region: int) -> bool:
        x = (region ^ mixed_seed) & 0xFFFFFFFFFFFFFFFF
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        return (x & 0xFFFFFFFF) < threshold

    return policy


class RadixPageTable:
    """x86-64-style 4-level page table with demand population.

    ``huge_policy`` (a callable of the 2 MB region number ``vpn >>
    LEVEL_BITS``) decides — once, at first touch of each region — whether
    the region is backed by a 2 MB huge page: the PD entry then becomes
    the leaf (a 3-load walk) and the region receives 512 contiguous,
    naturally aligned frames. ``None`` (the default) keeps every mapping
    at 4 KB granularity with behaviour identical to the pre-huge-page
    table.
    """

    def __init__(
        self,
        allocator: Optional[FrameAllocator] = None,
        huge_policy: Optional[Callable[[int], bool]] = None,
    ):
        self.allocator = allocator or FrameAllocator()
        self._root = _Node(self.allocator.allocate())
        self._huge_policy = huge_policy
        self.stats = Stats()

    @staticmethod
    def level_index(vpn: int, level: int) -> int:
        """Index into the ``level``-th node (level 0 = root/PML4)."""
        shift = LEVEL_BITS * (NUM_LEVELS - 1 - level)
        return (vpn >> shift) & (ENTRIES_PER_NODE - 1)

    def lookup(self, vpn: int) -> Optional[int]:
        """Translate without allocating. Returns PFN or None."""
        node = self._root
        for level in range(NUM_LEVELS - 2):
            child = node.children.get(self.level_index(vpn, level))
            if child is None:
                return None
            node = child  # type: ignore[assignment]
        child = node.children.get(self.level_index(vpn, NUM_LEVELS - 2))
        if child is None:
            return None
        if type(child) is _HugeLeaf:
            return child.base + (vpn & _IDX_MASK)
        return child.children.get(self.level_index(vpn, NUM_LEVELS - 1))

    def translate(self, vpn: int) -> int:
        """Translate ``vpn``, allocating the mapping on first touch."""
        pfn, _ = self.walk_path(vpn)
        return pfn

    def walk_path(self, vpn: int) -> Tuple[int, List[int]]:
        """Translate ``vpn`` and return the PTE physical addresses touched.

        Returns ``(pfn, [pte_paddr_level0, ...])`` — the physical
        addresses a hardware walk loads, root first: four for a 4 KB
        mapping, three for a 2 MB huge mapping (the PD entry is the
        leaf, so ``len(path) == NUM_LEVELS - 1`` identifies a huge walk
        and ``pfn - (vpn & 511)`` recovers the region's base frame).
        Missing nodes/mappings are created (demand paging).
        """
        if vpn < 0 or vpn >= (1 << VPN_BITS):
            raise ValueError(f"vpn {vpn:#x} outside {VPN_BITS}-bit space")
        path: List[int] = []
        append = path.append
        node = self._root
        for shift in _LEVEL_SHIFTS[:-2]:
            idx = (vpn >> shift) & _IDX_MASK
            append((node.frame << PAGE_SHIFT) | (idx * PTE_SIZE))
            child = node.children.get(idx)
            if child is None:
                child = _Node(self.allocator.allocate())
                node.children[idx] = child
                self.stats.add("nodes_allocated")
            node = child  # type: ignore[assignment]
        # PD level: the entry is either a pointer to a PT node or — for
        # huge-mapped regions — the 2 MB leaf itself.
        idx = (vpn >> _LEVEL_SHIFTS[-2]) & _IDX_MASK
        append((node.frame << PAGE_SHIFT) | (idx * PTE_SIZE))
        child = node.children.get(idx)
        if child is None:
            if self._huge_policy is not None and self._huge_policy(
                vpn >> LEVEL_BITS
            ):
                child = _HugeLeaf(
                    self.allocator.allocate_huge(ENTRIES_PER_NODE)
                )
                self.stats.add("huge_pages_mapped")
            else:
                child = _Node(self.allocator.allocate())
                self.stats.add("nodes_allocated")
            node.children[idx] = child
        if type(child) is _HugeLeaf:
            return child.base + (vpn & _IDX_MASK), path
        node = child  # type: ignore[assignment]
        idx = vpn & _IDX_MASK
        append((node.frame << PAGE_SHIFT) | (idx * PTE_SIZE))
        pfn = node.children.get(idx)
        if pfn is None:
            pfn = self.allocator.allocate()
            node.children[idx] = pfn
            self.stats.add("pages_mapped")
        return pfn, path

    def unmap(self, vpn: int) -> Optional[int]:
        """Remove the leaf mapping covering ``vpn`` (4 KB PTE or whole
        2 MB huge leaf). Returns the unmapped PFN (for huge regions, the
        frame ``vpn`` itself resolved to) or None if unmapped already.
        Intermediate nodes are kept — real kernels rarely tear those
        down, and the walker may repopulate the leaf on the next touch.
        """
        node = self._root
        for level in range(NUM_LEVELS - 2):
            child = node.children.get(self.level_index(vpn, level))
            if child is None:
                return None
            node = child  # type: ignore[assignment]
        idx = self.level_index(vpn, NUM_LEVELS - 2)
        child = node.children.get(idx)
        if child is None:
            return None
        if type(child) is _HugeLeaf:
            del node.children[idx]
            self.stats.add("pages_unmapped")
            return child.base + (vpn & _IDX_MASK)
        leaf_idx = vpn & _IDX_MASK
        pfn = child.children.pop(leaf_idx, None)
        if pfn is not None:
            self.stats.add("pages_unmapped")
        return pfn

    @property
    def pages_mapped(self) -> int:
        return self.stats.get("pages_mapped")

    @property
    def huge_pages_mapped(self) -> int:
        return self.stats.get("huge_pages_mapped")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RadixPageTable(pages_mapped={self.pages_mapped})"
