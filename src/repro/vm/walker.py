"""Hardware page-table walker with variable walk latency.

A walk triggered by an LLT miss first consults the page-walk caches to skip
resolved radix levels, then loads the remaining page-table entries through
the data-cache hierarchy (entering at L2). Walk latency therefore varies
with PWC hits and with whether the PTE loads hit in the caches — exactly
the behaviour the paper adds to Sniper (Section III).
"""

from __future__ import annotations

from typing import Tuple

from repro.common.stats import Stats
from repro.mem.hierarchy import CacheHierarchy
from repro.vm.pagetable import NUM_LEVELS, RadixPageTable
from repro.vm.pwc import PageWalkCaches

#: Cache-block shift used when turning PTE physical addresses into blocks.
BLOCK_SHIFT = 6


class PageTableWalker:
    """Performs radix walks, charging realistic variable latency."""

    def __init__(
        self,
        page_table: RadixPageTable,
        pwc: PageWalkCaches,
        hierarchy: CacheHierarchy,
    ):
        self.page_table = page_table
        self.pwc = pwc
        self.hierarchy = hierarchy
        self.stats = Stats()
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("walks", "walk_memory_accesses", "walk_cycles"), 0,
        ))

    def walk(self, vpn: int, now: int) -> Tuple[int, int]:
        """Walk ``vpn``; returns ``(pfn, walk_latency_cycles)``.

        Allocates the translation on first touch (demand paging). The
        returned latency covers PWC probes plus the 1-4 page-table loads
        issued through the cache hierarchy.
        """
        stat = self._stat
        stat["walks"] += 1
        pfn, path = self.page_table.walk_path(vpn)
        resolved, latency = self.pwc.consult(vpn)
        accesses = NUM_LEVELS - resolved
        stat["walk_memory_accesses"] += accesses
        walk_access = self.hierarchy.walk_access
        for pte_paddr in path[resolved:]:
            latency += walk_access(pte_paddr >> BLOCK_SHIFT, now)
        self.pwc.fill(vpn)
        stat["walk_cycles"] += latency
        return pfn, latency

    @property
    def average_walk_latency(self) -> float:
        walks = self.stats.get("walks")
        return self.stats.get("walk_cycles") / walks if walks else 0.0
