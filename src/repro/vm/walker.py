"""Hardware page-table walker with variable walk latency.

A walk triggered by an LLT miss first consults the page-walk caches to skip
resolved radix levels, then loads the remaining page-table entries through
the data-cache hierarchy (entering at L2). Walk latency therefore varies
with PWC hits and with whether the PTE loads hit in the caches — exactly
the behaviour the paper adds to Sniper (Section III).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.common.stats import Stats
from repro.mem.hierarchy import CacheHierarchy
from repro.vm.pagetable import LEVEL_BITS, NUM_LEVELS, RadixPageTable
from repro.vm.pwc import PageWalkCaches

#: Cache-block shift used when turning PTE physical addresses into blocks.
BLOCK_SHIFT = 6

_HUGE_OFFSET_MASK = (1 << LEVEL_BITS) - 1


class PageTableWalker:
    """Performs radix walks, charging realistic variable latency.

    Multi-tenant machines give the walker one page table per address
    space: ``table_factory(asid)`` builds tables on demand (they share
    one :class:`~repro.vm.physmem.FrameAllocator`, so PFNs stay unique
    across tenants and the physically-indexed caches see real
    inter-tenant interference). ASID 0 always uses ``page_table``.
    """

    def __init__(
        self,
        page_table: RadixPageTable,
        pwc: PageWalkCaches,
        hierarchy: CacheHierarchy,
        table_factory: Optional[Callable[[int], RadixPageTable]] = None,
    ):
        self.page_table = page_table
        self.pwc = pwc
        self.hierarchy = hierarchy
        self._tables: Dict[int, RadixPageTable] = {0: page_table}
        self._table_factory = table_factory
        self.stats = Stats()
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("walks", "walk_memory_accesses", "walk_cycles"), 0,
        ))

    def table_for(self, asid: int) -> RadixPageTable:
        """The page table backing ``asid``, created on first use."""
        table = self._tables.get(asid)
        if table is None:
            if self._table_factory is None:
                raise ValueError(
                    f"no page table for asid {asid} and no table_factory"
                )
            table = self._table_factory(asid)
            self._tables[asid] = table
        return table

    def walk(
        self, vpn: int, now: int, asid: int = 0
    ) -> Tuple[int, int, Optional[int]]:
        """Walk ``vpn`` under ``asid``; returns ``(pfn, walk_latency_cycles,
        huge_base)``.

        ``huge_base`` is None for 4 KB mappings; for a 2 MB mapping it is
        the region's base frame (the caller installs one huge LLT entry
        covering all 512 pages). Allocates the translation on first touch
        (demand paging). The returned latency covers PWC probes plus the
        page-table loads issued through the cache hierarchy — 1-4 for a
        4 KB walk, 1-3 for a huge walk (the PD entry is the leaf, and the
        PWC probe plan caps at the levels that exist: see
        :meth:`~repro.vm.pwc.PageWalkCaches.consult`).
        """
        stat = self._stat
        stat["walks"] += 1
        table = self.page_table if asid == 0 else self.table_for(asid)
        pfn, path = table.walk_path(vpn)
        levels = len(path)
        if levels == NUM_LEVELS:
            resolved, latency = self.pwc.consult(vpn, asid)
            huge_base = None
        else:
            resolved, latency = self.pwc.consult(
                vpn, asid, max_resolved=levels - 1
            )
            huge_base = pfn - (vpn & _HUGE_OFFSET_MASK)
        accesses = levels - resolved
        stat["walk_memory_accesses"] += accesses
        walk_access = self.hierarchy.walk_access
        for pte_paddr in path[resolved:]:
            latency += walk_access(pte_paddr >> BLOCK_SHIFT, now)
        self.pwc.fill(vpn, asid, max_resolved=levels - 1)
        stat["walk_cycles"] += latency
        return pfn, latency, huge_base

    @property
    def average_walk_latency(self) -> float:
        walks = self.stats.get("walks")
        return self.stats.get("walk_cycles") / walks if walks else 0.0
