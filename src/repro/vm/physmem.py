"""OS-like physical frame allocator.

Pages (and page-table nodes) receive physical frames on first touch, the
way a demand-paging OS would. Frames are handed out through a bijective
scramble of a monotone counter so that consecutive virtual pages do *not*
land in consecutive physical frames — real free lists are fragmented, and
physically-indexed caches (the LLC here) care about frame-number bits.
"""

from __future__ import annotations

from repro.common.bitops import is_power_of_two, mask
from repro.common.stats import Stats

#: Architectural page size used throughout the simulator (4 KB, the paper's
#: default; Section VI-F discusses why large pages are out of scope).
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


class OutOfPhysicalMemory(RuntimeError):
    """Raised when the configured physical-frame pool is exhausted."""


class FrameAllocator:
    """Allocates physical frame numbers on demand.

    ``scramble=True`` (default) maps the i-th allocation to
    ``(i * ODD + salt) mod pool`` — a bijection over a power-of-two pool
    that spreads frames across the physical address space deterministically.
    ``scramble=False`` yields sequential frames (useful in tests).
    """

    _ODD_MULTIPLIER = 0x9E3779B1  # golden-ratio odd constant

    def __init__(self, num_frames: int = 1 << 22, scramble: bool = True, seed: int = 1):
        if not is_power_of_two(num_frames):
            raise ValueError(f"num_frames must be a power of two, got {num_frames}")
        self.num_frames = num_frames
        self._mask = mask(num_frames.bit_length() - 1)
        self._next = 0
        self._scramble = scramble
        self._salt = (seed * 0x85EBCA6B) & self._mask
        self._huge_next = 0
        self.stats = Stats()
        # Hot-path counter, bumped inline (see Stats docstring).
        self.stats.counters["frames_allocated"] = 0

    def allocate(self) -> int:
        """Return a fresh physical frame number."""
        if self._next >= self.num_frames:
            raise OutOfPhysicalMemory(
                f"exhausted {self.num_frames} physical frames"
            )
        i = self._next
        self._next += 1
        self.stats.counters["frames_allocated"] += 1
        if not self._scramble:
            return i
        return ((i * self._ODD_MULTIPLIER) + self._salt) & self._mask

    def allocate_huge(self, span: int = 512) -> int:
        """Return the base frame of ``span`` contiguous, naturally aligned
        frames (2 MB huge pages need 512).

        Huge regions come from a dedicated frame region *above* the 4 KB
        pool (frame numbers ``num_frames ..``): the scramble is a
        bijection over the whole 4 KB pool, so carving contiguous runs
        out of it could alias huge frames with scrambled 4 KB
        allocations. A disjoint namespace keeps every PFN unique —
        which is what the physically-indexed caches and predictors key
        on — at the cost of never back-pressuring huge allocations
        against 4 KB ones. The huge region is bounded at ``num_frames``
        frames, mirroring the 4 KB pool.
        """
        if not is_power_of_two(span) or span > self.num_frames:
            raise ValueError(
                f"huge span must be a power of two <= {self.num_frames}, "
                f"got {span}"
            )
        if self._huge_next + span > self.num_frames:
            raise OutOfPhysicalMemory(
                f"exhausted {self.num_frames} huge-region frames"
            )
        base = self.num_frames + self._huge_next
        self._huge_next += span
        self.stats.add("huge_regions_allocated")
        return base

    @property
    def allocated(self) -> int:
        return self._next

    @property
    def huge_frames_allocated(self) -> int:
        return self._huge_next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrameAllocator(allocated={self._next}/{self.num_frames}, "
            f"scramble={self._scramble})"
        )
