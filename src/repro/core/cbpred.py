"""cbPred — the correlating dead-block predictor for the LLC (Section V-B).

cbPred only works coupled with dpPred: predicted-DOA PFNs arrive through
:meth:`CorrelatingDeadBlockPredictor.notify_doa_page` and are queued in the
PFQ. The LLC flows are exactly Figure 8:

* **LLC lookup** (8a): a hit on a DP-marked block sets its ``Accessed`` bit
  (the cache model sets ``accessed`` on every hit; the DP bit gates
  *training*, which is what matters architecturally).
* **LLC fill** (8b): the incoming block's PFN is matched against the PFQ.
  No match -> normal fill. On a match, bHIST is consulted with the 12-bit
  block-address hash: counter above threshold -> **bypass**; otherwise the
  block is allocated with its ``DP`` bit set.
* **LLC eviction** (8c): ignored unless ``DP`` is set. ``DP`` and not
  ``Accessed`` -> increment bHIST (true DOA); ``DP`` and ``Accessed`` ->
  clear bHIST (not DOA).

The ``cbPred-PFQ`` ablation of Table VII (PFQ disabled) trains and predicts
on *every* block, which shows exactly why the pre-filter is what buys the
paper its >98 % accuracy.

NOTE: the batched engine's flat interpreter
(:class:`repro.sim.engine._FlatStepper`) inlines the hot fill-time
decision (PFQ match, bHIST probe, bypass/DP-mark) at every LLC fill
site — stat names and event order included. Changes here must be
mirrored there; ``tests/test_engine_equivalence.py`` enforces the
bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.stats import Stats
from repro.core.bhist import BlockHistoryTable
from repro.core.pfq import PfnFilterQueue
from repro.obs.events import (
    EV_LLC_BYPASS,
    EV_LLC_MARK_DP,
    EV_LLC_VERDICT,
    EV_PFQ_HIT,
)
from repro.mem.cache import (
    FILL_ALLOCATE,
    FILL_BYPASS,
    CacheLine,
    CacheListener,
    SetAssocCache,
)
from repro.vm.physmem import PAGE_SHIFT
from repro.vm.walker import BLOCK_SHIFT

#: Right-shift turning a block address into its physical frame number.
BLOCKS_PER_PAGE_SHIFT = PAGE_SHIFT - BLOCK_SHIFT


@dataclass(frozen=True)
class CbPredConfig:
    """cbPred knobs; defaults are the paper's (Section V-B, Figure 11d)."""

    bhist_entries: int = 4096
    counter_bits: int = 3
    threshold: int = 6
    pfq_entries: int = 8
    use_pfq: bool = True

    def validate(self) -> None:
        if self.threshold < 0 or self.threshold >= (1 << self.counter_bits):
            raise ValueError(
                f"threshold {self.threshold} not representable in "
                f"{self.counter_bits}-bit counters"
            )


class CorrelatingDeadBlockPredictor(CacheListener):
    """The paper's cbPred, attached to the LLC as a :class:`CacheListener`.

    ``prediction_observer`` — optional instrumentation callback
    ``(block, predicted_doa)`` invoked whenever a prediction is attempted
    (i.e. the block passed the PFQ filter), used for Table VII ground truth.

    ``probe`` — nullable decision-event sink (see :mod:`repro.obs.events`).
    When set, PFQ matches, bypasses, DP markings and eviction-time
    verdicts are traced; when None (the default) the only cost is an
    identity test on decision paths.
    """

    def __init__(
        self,
        config: CbPredConfig = CbPredConfig(),
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        config.validate()
        self.config = config
        self.bhist = BlockHistoryTable(config.bhist_entries, config.counter_bits)
        self.pfq = PfnFilterQueue(config.pfq_entries)
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._mark_dp_next_fill = False

    # ------------------------------------------------------------------ #
    # dpPred coupling
    # ------------------------------------------------------------------ #
    def notify_doa_page(self, pfn: int) -> None:
        """Receive a predicted-DOA PFN from dpPred (TLB-fill message)."""
        self.pfq.insert(pfn)
        self.stats.add("pfn_notifications")

    # ------------------------------------------------------------------ #
    # CacheListener interface
    # ------------------------------------------------------------------ #
    def on_fill(self, cache: SetAssocCache, block: int, now: int) -> str:
        probe = self.probe
        if self.config.use_pfq:
            pfn = block >> BLOCKS_PER_PAGE_SHIFT
            if pfn not in self.pfq:
                self._mark_dp_next_fill = False
                return FILL_ALLOCATE
            self.stats.add("pfq_matches")
            if probe is not None:
                probe.emit(now, EV_PFQ_HIT, block)
        predicted_doa = self.bhist.predicts_doa(block, self.config.threshold)
        if self.prediction_observer is not None:
            self.prediction_observer(block, predicted_doa)
        if predicted_doa:
            self.stats.add("doa_predictions")
            self._mark_dp_next_fill = False
            if probe is not None:
                probe.emit(now, EV_LLC_BYPASS, block)
            return FILL_BYPASS
        # Falls on a DOA page but confidence is low: allocate with DP set.
        self._mark_dp_next_fill = True
        if probe is not None:
            probe.emit(now, EV_LLC_MARK_DP, block)
        return FILL_ALLOCATE

    def filled(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if self._mark_dp_next_fill:
            line.dp = True
            self._mark_dp_next_fill = False

    def on_evict(self, cache: SetAssocCache, line: CacheLine, now: int) -> None:
        if not line.dp:
            return
        if line.accessed:
            self.bhist.train_not_doa(line.tag)
        else:
            self.bhist.train_doa(line.tag)
            self.stats.add("doa_evictions_observed")
        if self.probe is not None:
            # DP-marked lines were predicted live (low confidence) at
            # fill; eviction resolves the ground truth.
            self.probe.emit(
                now, EV_LLC_VERDICT, line.tag, False, not line.accessed
            )

    # ------------------------------------------------------------------ #
    # Storage accounting (Section V-D)
    # ------------------------------------------------------------------ #
    def storage_bits(self, llc_blocks: int, pfn_bits: int = 39) -> int:
        """Total cbPred state in bits for a given LLC size (2 bits/block)."""
        return (
            2 * llc_blocks
            + self.bhist.storage_bits()
            + self.pfq.storage_bits(pfn_bits)
        )
