"""The paper's contribution: dpPred (LLT) and cbPred (LLC) predictors."""

from repro.core.bhist import BlockHistoryTable
from repro.core.cbpred import CbPredConfig, CorrelatingDeadBlockPredictor
from repro.core.dppred import DeadPagePredictor, DpPredConfig
from repro.core.hashing import block_hash, pc_hash, vpn_hash
from repro.core.pfq import PfnFilterQueue
from repro.core.phist import PageHistoryTable
from repro.core.shadow import ShadowTable

__all__ = [
    "BlockHistoryTable",
    "CbPredConfig",
    "CorrelatingDeadBlockPredictor",
    "DeadPagePredictor",
    "DpPredConfig",
    "block_hash",
    "pc_hash",
    "vpn_hash",
    "PfnFilterQueue",
    "PageHistoryTable",
    "ShadowTable",
]
