"""dpPred — the dead-page (DOA) predictor for the last-level TLB.

Implements Section V-A faithfully:

* **LLT lookup** (Figure 6a): a hit sets the entry's ``Accessed`` bit (done
  by :class:`~repro.vm.tlb.Tlb`). On a miss the shadow table is consulted;
  a match returns the translation (walk avoided), refills the LLT, removes
  the shadow entry, and flushes the pHIST column for h(VPN) — negative
  feedback for the detected misprediction.
* **LLT fill** (Figure 6b): pHIST is indexed with (h(PC) from the MSHR,
  h(VPN)); a counter above the threshold (default 6) predicts DOA: the
  translation bypasses the LLT into the shadow table's victim entry, and
  the PFN is forwarded to the LLC's PFQ (cbPred coupling).
* **LLT eviction** (Figure 6c): if the ``Accessed`` bit is set the pHIST
  counter is cleared (not DOA); otherwise it is incremented (true DOA).

The ``dpPred-SH`` ablation of Table VI (shadow table disabled) is the
``shadow_entries=0`` configuration: bypasses still happen but there is no
victim buffer and no negative feedback.

NOTE: the batched engine's flat interpreter
(:class:`repro.sim.engine._FlatStepper`) inlines the hot paths of
:meth:`DeadPagePredictor.on_fill`, :meth:`on_evict`, and the shadow-miss
branch of :meth:`on_miss` — stat names, event order, and table indexing
included. Changes here must be mirrored there;
``tests/test_engine_equivalence.py`` enforces the bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.stats import Stats
from repro.core.hashing import pc_hash, vpn_hash
from repro.obs.events import (
    EV_LLT_BYPASS,
    EV_LLT_DEMOTE,
    EV_LLT_VERDICT,
    EV_PFQ_PUSH,
    EV_SHADOW_HIT,
    EV_SHADOW_PROMOTE,
)
from repro.core.phist import PageHistoryTable
from repro.core.shadow import ShadowTable
from repro.vm.tlb import (
    FILL_ALLOCATE,
    FILL_BYPASS,
    FILL_DISTANT,
    Tlb,
    TlbEntry,
    TlbListener,
)


#: Predicted-DOA pages are not allocated at all (the paper's design).
ACTION_BYPASS = "bypass"
#: Ablation: allocate predicted-DOA pages at the LRU position instead.
ACTION_DEMOTE = "demote"


@dataclass(frozen=True)
class DpPredConfig:
    """dpPred knobs; defaults are the paper's (Section V-A, Figure 11b/c).

    ``action`` ablates the paper's bypass decision: ``"demote"`` inserts
    predicted-DOA pages at the LRU position (the SHiP-style adaptation)
    instead of bypassing, isolating how much of dpPred's win comes from
    the bypass itself versus the prediction.
    """

    pc_hash_bits: int = 6
    vpn_hash_bits: int = 4
    counter_bits: int = 3
    threshold: int = 6
    shadow_entries: int = 2
    action: str = ACTION_BYPASS

    def validate(self) -> None:
        if self.threshold < 0 or self.threshold >= (1 << self.counter_bits):
            raise ValueError(
                f"threshold {self.threshold} not representable in "
                f"{self.counter_bits}-bit counters"
            )
        if self.shadow_entries < 0:
            raise ValueError("shadow_entries must be >= 0")
        if self.action not in (ACTION_BYPASS, ACTION_DEMOTE):
            raise ValueError(
                f"action must be {ACTION_BYPASS!r} or {ACTION_DEMOTE!r}, "
                f"got {self.action!r}"
            )


class DeadPagePredictor(TlbListener):
    """The paper's dpPred, attached to the LLT as a :class:`TlbListener`.

    ``pfn_sink`` — if set, receives the PFN of every predicted-DOA page
    ("the corresponding PFN is sent to all LLC slices"); this is how cbPred
    is coupled.

    ``prediction_observer`` — optional instrumentation callback
    ``(vpn, predicted_doa)`` invoked at every fill-time prediction, used by
    the accuracy/coverage ground-truth machinery (Table VI).

    ``probe`` — nullable decision-event sink (see :mod:`repro.obs.events`).
    When set, bypass/demote decisions, shadow promotions, misprediction
    flushes, PFQ pushes and eviction-time verdicts are traced; when None
    (the default) the only cost is an identity test on decision paths.
    """

    def __init__(
        self,
        config: DpPredConfig = DpPredConfig(),
        pfn_sink: Optional[Callable[[int], None]] = None,
        prediction_observer: Optional[Callable[[int, bool], None]] = None,
    ):
        config.validate()
        self.config = config
        self.phist = PageHistoryTable(
            config.pc_hash_bits, config.vpn_hash_bits, config.counter_bits
        )
        self.shadow: Optional[ShadowTable] = (
            ShadowTable(config.shadow_entries) if config.shadow_entries else None
        )
        self.pfn_sink = pfn_sink
        self.prediction_observer = prediction_observer
        self.stats = Stats()
        self.probe = None
        self._refilling = False
        self._last_pc_hash = 0

    # ------------------------------------------------------------------ #
    # TlbListener interface
    # ------------------------------------------------------------------ #
    def on_miss(self, tlb: Tlb, vpn: int, now: int) -> Optional[int]:
        if self.shadow is None:
            return None
        entry = self.shadow.lookup(vpn)
        if entry is None:
            return None
        pfn, pc_h = entry
        self.stats.add("shadow_hits")
        probe = self.probe
        if probe is not None:
            # A shadow hit *is* a resolved verdict: predicted dead, wasn't.
            probe.emit(now, EV_SHADOW_HIT, vpn, pfn)
            probe.emit(now, EV_LLT_VERDICT, vpn, True, False)
        # Negative feedback: forget the mispredicted VPN's column. In the
        # pure-PC variant (Figure 11b) there is only one column, which
        # would wipe the whole table — clear just the offending PC's cell.
        if self.config.vpn_hash_bits == 0:
            self.phist.train_not_doa(pc_h, 0)
        else:
            self.phist.flush_column(vpn_hash(vpn, self.config.vpn_hash_bits))
        # Place the translation back in the LLT without a fresh prediction
        # (Figure 6a steps 1-4).
        self._refilling = True
        try:
            tlb.fill(vpn, pfn, pc_h, now)
        finally:
            self._refilling = False
        return pfn

    def on_fill(self, tlb: Tlb, vpn: int, pfn: int, pc: int, now: int) -> str:
        # ``pc`` is the full PC recorded in the LLT MSHR at miss time; only
        # its fold-XOR hash is ever stored (hashing is idempotent, so a
        # shadow-table refill carrying an already-hashed value is safe).
        pc_h = pc_hash(pc, self.config.pc_hash_bits)
        self._last_pc_hash = pc_h
        if self._refilling:
            return FILL_ALLOCATE
        vpn_h = vpn_hash(vpn, self.config.vpn_hash_bits)
        predicted_doa = self.phist.predicts_doa(
            pc_h, vpn_h, self.config.threshold
        )
        if self.prediction_observer is not None:
            self.prediction_observer(vpn, predicted_doa)
        if not predicted_doa:
            return FILL_ALLOCATE
        self.stats.add("doa_predictions")
        probe = self.probe
        if self.pfn_sink is not None:
            self.pfn_sink(pfn)
            if probe is not None:
                probe.emit(now, EV_PFQ_PUSH, pfn)
        if self.config.action == ACTION_DEMOTE:
            if probe is not None:
                probe.emit(now, EV_LLT_DEMOTE, vpn, pfn)
            return FILL_DISTANT
        if self.shadow is not None:
            self.shadow.insert(vpn, pfn, pc_h, now)
            if probe is not None:
                probe.emit(now, EV_SHADOW_PROMOTE, vpn, pfn)
        if probe is not None:
            probe.emit(now, EV_LLT_BYPASS, vpn, pfn)
        return FILL_BYPASS

    def filled(self, tlb: Tlb, entry, now: int) -> None:
        # The LLT entry keeps only the narrow hash, not the full PC
        # (the paper's 6-bit-per-entry storage budget).
        entry.pc_hash = self._last_pc_hash

    def on_evict(self, tlb: Tlb, entry: TlbEntry, now: int) -> None:
        vpn_h = vpn_hash(entry.vpn, self.config.vpn_hash_bits)
        if entry.accessed:
            self.phist.train_not_doa(entry.pc_hash, vpn_h)
        else:
            self.phist.train_doa(entry.pc_hash, vpn_h)
            self.stats.add("doa_evictions_observed")
        if self.probe is not None:
            # Allocated entries were predicted live at fill; eviction
            # resolves the ground truth (Accessed bit).
            self.probe.emit(
                now, EV_LLT_VERDICT, entry.vpn, False, not entry.accessed
            )

    # ------------------------------------------------------------------ #
    # Storage accounting (Section V-D)
    # ------------------------------------------------------------------ #
    def storage_bits(self, llt_entries: int) -> int:
        """Total dpPred state in bits for a given LLT size.

        Per-LLT-entry metadata (PC hash + Accessed bit) + pHIST + shadow.
        """
        per_entry = (self.config.pc_hash_bits + 1) * llt_entries
        shadow_bits = (
            self.shadow.storage_bits() if self.shadow is not None else 0
        )
        return per_entry + self.phist.storage_bits() + shadow_bits
