"""dpPred's shadow table (Section V-A).

"We keep a small (e.g., two entries) shadow table that keeps recently
bypassed entries and also acts as a victim buffer. A hit in the shadow
table indicates misprediction."

Entries hold the full bypassed translation — VPN, PFN, and the PC hash that
would have been stored in the LLT — so a shadow hit can refill the LLT
without a page walk. Replacement is FIFO over the tiny capacity.

NOTE: the batched engine's flat interpreter inlines the shadow *miss*
probe and capacity-eviction insert against ``_entries`` directly
(shadow hits take the real :meth:`ShadowTable.lookup` path); see
:class:`repro.sim.engine._FlatStepper`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.common.stats import Stats
from repro.obs.events import EV_SHADOW_EVICT


class ShadowTable:
    """FIFO victim buffer of recently bypassed translations.

    ``probe`` — nullable decision-event sink (see :mod:`repro.obs.events`);
    when set, capacity evictions are traced: a shadow entry ageing out
    unreferenced is the closest observable signal that its bypass was
    *correct* (the page really was dead on arrival).
    """

    def __init__(self, capacity: int = 2):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self.stats = Stats()
        self.probe = None

    def insert(self, vpn: int, pfn: int, pc_hash: int, now: int = 0) -> None:
        """Record a bypassed translation, evicting the oldest if full."""
        if vpn in self._entries:
            # Refresh in place; the translation is identical.
            del self._entries[vpn]
        elif len(self._entries) >= self.capacity:
            evicted_vpn, _ = self._entries.popitem(last=False)
            self.stats.add("evictions")
            if self.probe is not None:
                self.probe.emit(now, EV_SHADOW_EVICT, evicted_vpn)
        self._entries[vpn] = (pfn, pc_hash)
        self.stats.add("inserts")

    def lookup(self, vpn: int) -> Optional[Tuple[int, int]]:
        """Consume a match: returns ``(pfn, pc_hash)`` and removes the entry.

        A hit means the bypassed page was re-referenced — a misprediction —
        and the caller must issue pHIST negative feedback.
        """
        entry = self._entries.pop(vpn, None)
        if entry is None:
            self.stats.add("misses")
            return None
        self.stats.add("hits")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def storage_bits(self, entry_bits: int = 13 * 8) -> int:
        """State in bits; the paper budgets ~13 bytes per entry."""
        return self.capacity * entry_bits
