"""bHIST: cbPred's block history table (Section V-B).

A direct-mapped table of 3-bit saturating counters (4096 entries for a
2 MB LLC) indexed by a 12-bit fold-XOR hash of the physical block address.
Counters are updated only for blocks whose ``DP`` bit is set — blocks that
mapped onto a predicted-DOA page — which keeps aliasing low despite the
small table.
"""

from __future__ import annotations

from repro.common.bitops import log2_exact
from repro.common.counters import CounterArray
from repro.common.stats import Stats
from repro.core.hashing import block_hash


class BlockHistoryTable:
    """Direct-mapped saturating-counter table keyed by block-address hash."""

    def __init__(self, num_entries: int = 4096, counter_bits: int = 3):
        self.num_entries = num_entries
        self.hash_bits = log2_exact(num_entries)
        self.counter_bits = counter_bits
        self._counters = CounterArray(num_entries, counter_bits)
        self.stats = Stats()

    def _index(self, block: int) -> int:
        return block_hash(block, self.hash_bits)

    def value(self, block: int) -> int:
        return self._counters.get(self._index(block))

    def predicts_doa(self, block: int, threshold: int) -> bool:
        """True when the counter is strictly above ``threshold`` (paper: 6)."""
        return self._counters.is_above(self._index(block), threshold)

    def train_doa(self, block: int) -> None:
        """A DP-marked block was evicted untouched: strengthen."""
        self._counters.increment(self._index(block))
        self.stats.add("doa_trainings")

    def train_not_doa(self, block: int) -> None:
        """A DP-marked block was hit before eviction: clear."""
        self._counters.clear(self._index(block))
        self.stats.add("not_doa_trainings")

    def storage_bits(self) -> int:
        return self.num_entries * self.counter_bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlockHistoryTable({self.num_entries}x{self.counter_bits}b)"
