"""pHIST: dpPred's two-dimensional page history table (Section V-A).

A direct-mapped table of 3-bit saturating counters indexed by
``(h(PC), h(VPN))``: the PC hash selects the row and the VPN hash the
column. The default 6-bit PC hash x 4-bit VPN hash gives the paper's
1024-entry table. Setting ``vpn_hash_bits=0`` degenerates to the pure
PC-indexed variant studied in Figure 11b (e.g. a 10-bit PC hash).

The novel piece is :meth:`flush_column` — the negative feedback issued when
the shadow table detects a misprediction: "The column of entries
corresponding to the (hash of) given VPN is flushed from the pHIST".

NOTE: the batched engine's flat interpreter probes and trains the
counter array (``_counters._values``) in place with the same
``row * num_cols + col`` indexing; see
:class:`repro.sim.engine._FlatStepper`.
"""

from __future__ import annotations

from repro.common.counters import CounterArray
from repro.common.stats import Stats


class PageHistoryTable:
    """Two-dimensional direct-mapped table of saturating counters."""

    def __init__(
        self,
        pc_hash_bits: int = 6,
        vpn_hash_bits: int = 4,
        counter_bits: int = 3,
    ):
        if pc_hash_bits <= 0:
            raise ValueError(f"pc_hash_bits must be positive, got {pc_hash_bits}")
        if vpn_hash_bits < 0:
            raise ValueError(
                f"vpn_hash_bits must be non-negative, got {vpn_hash_bits}"
            )
        self.pc_hash_bits = pc_hash_bits
        self.vpn_hash_bits = vpn_hash_bits
        self.counter_bits = counter_bits
        self.num_rows = 1 << pc_hash_bits
        self.num_cols = 1 << vpn_hash_bits
        self._counters = CounterArray(self.num_rows * self.num_cols, counter_bits)
        self.stats = Stats()

    @property
    def num_entries(self) -> int:
        return self.num_rows * self.num_cols

    def _index(self, pc_h: int, vpn_h: int) -> int:
        return ((pc_h % self.num_rows) * self.num_cols) + (vpn_h % self.num_cols)

    def value(self, pc_h: int, vpn_h: int) -> int:
        return self._counters.get(self._index(pc_h, vpn_h))

    def predicts_doa(self, pc_h: int, vpn_h: int, threshold: int) -> bool:
        """True when the counter is strictly above ``threshold`` (paper: 6)."""
        return self._counters.is_above(self._index(pc_h, vpn_h), threshold)

    def train_doa(self, pc_h: int, vpn_h: int) -> None:
        """A true DOA page was evicted: strengthen the counter."""
        self._counters.increment(self._index(pc_h, vpn_h))
        self.stats.add("doa_trainings")

    def train_not_doa(self, pc_h: int, vpn_h: int) -> None:
        """A non-DOA page was evicted: clear the counter (paper's rule)."""
        self._counters.clear(self._index(pc_h, vpn_h))
        self.stats.add("not_doa_trainings")

    def flush_column(self, vpn_h: int) -> None:
        """Negative feedback: forget every PC's confidence for this VPN hash."""
        col = vpn_h % self.num_cols
        for row in range(self.num_rows):
            self._counters.clear(row * self.num_cols + col)
        self.stats.add("column_flushes")

    def storage_bits(self) -> int:
        """Total state in bits (for the Section V-D storage accounting)."""
        return self.num_entries * self.counter_bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageHistoryTable({self.num_rows}x{self.num_cols}, "
            f"{self.counter_bits}-bit counters)"
        )
