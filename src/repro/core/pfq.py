"""PFQ — the PFN filter queue at the LLC (Section V-B).

"We propose to introduce a small structure to keep physical page numbers of
recently predicted DOA pages at the LLC. ... We found that an 8-entry PFQ
is sufficient since typical cache block accesses fall in recently accessed
pages. Entries in PFQ are replaced in a simple FIFO order."

Membership is checked on every LLC fill ("matched against all the entries
in PFQ in parallel"), so lookups here are O(1) via a mirror set.
"""

from __future__ import annotations

from collections import deque

from repro.common.stats import Stats


class PfnFilterQueue:
    """Small FIFO of predicted-DOA physical page numbers."""

    def __init__(self, capacity: int = 8):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._queue: deque = deque()
        self._members: set = set()
        self.stats = Stats()

    def insert(self, pfn: int) -> None:
        """Insert a predicted-DOA PFN, FIFO-evicting the oldest when full."""
        if pfn in self._members:
            return  # already queued; hardware would match both entries
        if len(self._queue) >= self.capacity:
            evicted = self._queue.popleft()
            self._members.discard(evicted)
            self.stats.add("evictions")
        self._queue.append(pfn)
        self._members.add(pfn)
        self.stats.add("inserts")

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._members

    def __len__(self) -> int:
        return len(self._queue)

    def storage_bits(self, pfn_bits: int = 39) -> int:
        """State in bits (paper: 8 entries x 39-bit PFN = 39 bytes)."""
        return self.capacity * pfn_bits
