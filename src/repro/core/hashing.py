"""The predictor hash functions (Section V).

* ``pc_hash`` — "Each TLB entry also stores a hash of the program counter
  (6 bits long by default) of the memory instruction that brought the entry
  in the TLB. The hash is computed by dividing the PC into subblocks and
  XOR-ing them."
* ``vpn_hash`` — the 4-bit fold of the virtual page number used as the
  second pHIST dimension.
* ``block_hash`` — "the cache block address is folded and XOR-ed to create
  a 12 bit hash to lookup the bHIST table."
"""

from __future__ import annotations

from repro.common.bitops import fold_xor

#: Defaults from the paper's Section V-A / V-B.
DEFAULT_PC_HASH_BITS = 6
DEFAULT_VPN_HASH_BITS = 4
DEFAULT_BLOCK_HASH_BITS = 12


def pc_hash(pc: int, bits: int = DEFAULT_PC_HASH_BITS) -> int:
    """Fold-XOR hash of the program counter."""
    return fold_xor(pc, bits)


def vpn_hash(vpn: int, bits: int = DEFAULT_VPN_HASH_BITS) -> int:
    """Fold-XOR hash of the virtual page number.

    ``bits=0`` selects the pure-PC-indexed pHIST variant (Figure 11b):
    there is a single column, so every VPN hashes to 0.
    """
    if bits == 0:
        return 0
    return fold_xor(vpn, bits)


def block_hash(block: int, bits: int = DEFAULT_BLOCK_HASH_BITS) -> int:
    """Fold-XOR hash of a physical cache-block address."""
    return fold_xor(block, bits)
