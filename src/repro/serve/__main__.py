"""``python -m repro.serve`` — run the simulation server in the foreground.

SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
requests finish, the worker pool is released, then the process exits.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

import repro.sim.diskcache as diskcache
from repro.serve.app import ReproServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running simulation server over the run cache.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="warm pool size; 0 runs simulations on server threads",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"disk cache directory (default {diskcache.DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent result cache",
    )
    return parser


async def _serve(args) -> None:
    server = ReproServer(
        host=args.host, port=args.port, workers=args.workers
    )
    await server.start()
    print(
        f"repro.serve listening on http://{server.host}:{server.port} "
        f"(workers={args.workers}, cache="
        f"{diskcache.cache_dir() if diskcache.is_enabled() else 'off'})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining...", flush=True)
    await server.stop(drain=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_cache:
        diskcache.disable()
    else:
        diskcache.enable(args.cache_dir)
    asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
