"""Simulation-as-a-service: a long-running HTTP/JSON front to the runner.

``python -m repro.serve`` starts an asyncio server (stdlib only — a
minimal HTTP/1.1 layer over :func:`asyncio.start_server`) that holds a
persistent warm worker pool, coalesces duplicate in-flight requests by
content-addressed config hash, and serves ``.repro_cache/`` with
read-through semantics. See :mod:`repro.serve.app` for the endpoints and
the invariants (a served result is byte-identical to the same config run
through the CLI).
"""

from repro.serve.app import BackgroundServer, ReproServer, start_background
from repro.serve.client import ServeClient
from repro.serve.pool import ServePool
from repro.serve.protocol import (
    ProtocolError,
    config_from_wire,
    config_to_wire,
    parse_matrix_body,
    parse_run_body,
    run_key,
)

__all__ = [
    "BackgroundServer",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServePool",
    "config_from_wire",
    "config_to_wire",
    "parse_matrix_body",
    "parse_run_body",
    "run_key",
    "start_background",
]
