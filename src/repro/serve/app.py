"""The simulation server: asyncio HTTP/JSON front over the runner.

Endpoints (all bodies and responses are JSON; responses use the
byte-stable :func:`repro.sim.results.wire_bytes` encoding):

* ``POST /run`` — one simulation. Cache hit → answered immediately from
  ``.repro_cache/`` / the in-process memo without touching the worker
  pool; miss → computed on the warm pool, persisted through the normal
  schema-2 envelope path, and returned. Duplicate concurrent requests
  for the same content-addressed key coalesce onto one computation via
  the process-wide :func:`repro.sim.inflight.global_inflight` registry.
  With ``"stream": true`` the response is NDJSON chunks: a provenance
  row, one row per observation interval, then the final result row.
* ``POST /matrix`` — a run matrix, executed by
  :func:`repro.sim.parallel.run_matrix` borrowing the server's warm
  pool, so it inherits the supervised retry/timeout/checkpoint
  machinery.
* ``GET /result/<key>`` — raw read-through lookup of a stored result
  payload by content key.
* ``GET /status`` — counters, in-flight snapshot, pool and cache state.
* ``GET /healthz`` — liveness.

Every response carries *provenance*: the cache schema version, the
content-addressed key, and whether the result was served from cache,
computed here, or coalesced onto an in-flight computation.

The invariant the tests pin down: a served result is **byte-identical**
to the same config run through the CLI — the server reuses the exact
runner path (``run_cached`` → ``run_trace`` with the derived machine
seed) and the canonical wire encoding, and never mutates results.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Optional, Set

import repro.obs.harness as obs_harness
import repro.sim.diskcache as diskcache
from repro.obs.events import (
    EV_SERVE_COALESCE,
    EV_SERVE_COMPUTE,
    EV_SERVE_DRAIN,
    EV_SERVE_HIT,
    EV_SERVE_REQUEST,
    EV_SERVE_STREAM,
)
from repro.obs.export import ndjson_line, stream_timeline_rows
from repro.obs.telemetry import Telemetry
from repro.serve.pool import ServePool
from repro.serve.protocol import (
    ProtocolError,
    parse_matrix_body,
    parse_run_body,
    run_key,
)
from repro.sim.inflight import global_inflight
from repro.sim.parallel import run_matrix
from repro.sim.results import wire_bytes
from repro.sim.runner import cached_result, prime_run_cache

_JSON = "application/json"
_NDJSON = "application/x-ndjson"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class ReproServer:
    """One server instance: sockets, counters, pool, request handlers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        pool: Optional[ServePool] = None,
    ):
        self.host = host
        self.port = port
        self.pool = pool if pool is not None else ServePool(workers)
        self.counters = {
            "requests": 0,
            "hits": 0,
            "computed": 0,
            "coalesced": 0,
            "streams": 0,
            "matrix_cells": 0,
            "errors": 0,
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: Set[asyncio.Task] = set()
        self._started = time.monotonic()
        self._draining = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections; with ``drain`` (the default) wait
        for in-flight request handlers to finish before tearing down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        current = asyncio.current_task()
        pending = [
            task for task in self._handlers
            if task is not current and not task.done()
        ]
        if pending:
            obs_harness.record(EV_SERVE_DRAIN, len(pending))
            if drain:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                for task in pending:
                    task.cancel()
        self.pool.close()

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # Client went away; nothing to answer.
        except Exception as exc:
            self.counters["errors"] += 1
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = await reader.readline()
        if not request_line:
            return
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": "malformed request"})
            return
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        raw = await reader.readexactly(length) if length else b""

        self.counters["requests"] += 1
        obs_harness.record(EV_SERVE_REQUEST, method, path)

        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
        elif method == "GET" and path == "/status":
            await self._respond(writer, 200, self._status())
        elif method == "GET" and path.startswith("/result/"):
            await self._get_result(writer, path[len("/result/"):])
        elif method == "POST" and path == "/run":
            await self._post_run(writer, raw)
        elif method == "POST" and path == "/matrix":
            await self._post_matrix(writer, raw)
        else:
            status = 404 if method in ("GET", "POST") else 405
            await self._respond(
                writer, status, {"error": f"no route {method} {path}"}
            )

    async def _respond(
        self, writer, status: int, body, content_type: str = _JSON
    ) -> None:
        payload = body if isinstance(body, bytes) else wire_bytes(body)
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _status(self) -> dict:
        cache = {"enabled": diskcache.is_enabled()}
        if diskcache.is_enabled():
            cache.update(diskcache.stats())
        return {
            "ok": True,
            "draining": self._draining,
            "uptime_s": time.monotonic() - self._started,
            "counters": dict(self.counters),
            "inflight": global_inflight().snapshot(),
            "pool": self.pool.describe(),
            "cache": cache,
        }

    async def _get_result(self, writer, key: str) -> None:
        payload = diskcache.load_payload(key)
        if payload is None:
            await self._respond(
                writer, 404, {"error": f"no stored result for key {key}"}
            )
            return
        await self._respond(writer, 200, wire_bytes(payload))

    def _parse(self, raw: bytes, parser):
        try:
            body = json.loads(raw.decode()) if raw else {}
        except ValueError:
            raise ProtocolError("body is not valid JSON")
        return parser(body)

    async def _post_run(self, writer, raw: bytes) -> None:
        try:
            request, spec, stream = self._parse(raw, parse_run_body)
        except ProtocolError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        key = run_key(request, spec)
        provenance = {
            "schema": diskcache.CACHE_SCHEMA_VERSION,
            "key": key,
            "workload": request.workload,
            "config_name": request.config.name,
            "budget": request.budget,
            "seed": request.seed,
            "cached": False,
            "coalesced": False,
        }

        payload = None
        result = None
        if spec is None:
            # Read-through fast path: a warm hit never touches the pool.
            result = cached_result(
                request.workload, request.config, request.budget,
                request.seed,
            )
        if result is not None:
            provenance["cached"] = True
            self.counters["hits"] += 1
            obs_harness.record(EV_SERVE_HIT, key)
        else:
            registry = global_inflight()
            is_leader, future = registry.lead_or_follow(key)
            if is_leader:
                self.counters["computed"] += 1
                obs_harness.record(EV_SERVE_COMPUTE, key)
                try:
                    outcome = await asyncio.wrap_future(
                        self.pool.submit(request, spec)
                    )
                except BaseException as exc:
                    registry.fail(key, exc)
                    raise
                result, payload = outcome
                prime_run_cache(
                    request.workload, request.config, request.budget,
                    request.seed, result,
                )
                # Plain keys may have run_matrix followers, which expect a
                # bare SimResult; observed keys only ever coalesce with
                # identical observed requests, so they carry the payload.
                registry.resolve(
                    key, result if spec is None else outcome
                )
            else:
                provenance["coalesced"] = True
                self.counters["coalesced"] += 1
                obs_harness.record(EV_SERVE_COALESCE, key)
                value = await asyncio.wrap_future(future)
                if spec is None:
                    result = value
                else:
                    result, payload = value

        if stream:
            await self._stream_run(writer, provenance, result, payload, key)
        else:
            await self._respond(
                writer, 200,
                {"provenance": provenance, "result": result.to_dict()},
            )

    async def _stream_run(
        self, writer, provenance, result, payload, key
    ) -> None:
        """NDJSON chunked response: provenance, interval rows, result."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {_NDJSON}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))

        async def chunk(data: bytes) -> None:
            writer.write(f"{len(data):x}\r\n".encode("latin-1"))
            writer.write(data + b"\r\n")
            await writer.drain()

        rows = 0
        await chunk(ndjson_line({"kind": "provenance", **provenance}))
        if payload is not None:
            telemetry = Telemetry.from_payload(payload)
            if telemetry.timeline is not None:
                for row in stream_timeline_rows(telemetry.timeline):
                    rows += 1
                    await chunk(ndjson_line(row))
        await chunk(
            ndjson_line({"kind": "result", "result": result.to_dict()})
        )
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self.counters["streams"] += 1
        obs_harness.record(EV_SERVE_STREAM, key, rows)

    async def _post_matrix(self, writer, raw: bytes) -> None:
        try:
            requests, jobs = self._parse(raw, parse_matrix_body)
        except ProtocolError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        keys = [run_key(req) for req in requests]
        precached = {
            req: cached_result(
                req.workload, req.config, req.budget, req.seed
            ) is not None
            for req in requests
        }
        warm = self.pool.warm_pool
        if jobs is None:
            jobs = self.pool.workers if warm is not None else 1
        results = await asyncio.to_thread(
            run_matrix, requests, jobs=jobs, pool=warm
        )
        self.counters["matrix_cells"] += len(results)
        cells = [
            {
                "workload": req.workload,
                "config_name": req.config.name,
                "budget": req.budget,
                "seed": req.seed,
                "key": key,
                "cached": precached[req],
                "result": results[req].to_dict(),
            }
            for req, key in zip(requests, keys)
        ]
        await self._respond(
            writer, 200,
            {
                "provenance": {
                    "schema": diskcache.CACHE_SCHEMA_VERSION,
                    "cells": len(cells),
                    "jobs": jobs,
                },
                "results": cells,
            },
        )


# ---------------------------------------------------------------------- #
# Background (own-thread) server — tests and embedders
# ---------------------------------------------------------------------- #
class BackgroundServer:
    """A :class:`ReproServer` on its own thread + event loop.

    ``start()`` blocks until the socket is listening (so ``.port`` is
    final); ``stop()`` drains gracefully and joins the thread.
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self.server: Optional[ReproServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self._main())
        finally:
            self.loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            self.server = ReproServer(**self._kwargs)
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain, tear down, and join (idempotent)."""
        if self.loop is None or self.server is None:
            return
        if self._thread is None or not self._thread.is_alive():
            return

        async def shutdown():
            await self.server.stop(drain=drain)
            self._stop.set()

        asyncio.run_coroutine_threadsafe(shutdown(), self.loop).result(
            timeout
        )
        self._thread.join(timeout)


def start_background(
    host: str = "127.0.0.1", port: int = 0, workers: int = 0, **kwargs
) -> BackgroundServer:
    """Start a server on a background thread; returns the live handle."""
    return BackgroundServer(
        host=host, port=port, workers=workers, **kwargs
    ).start()
