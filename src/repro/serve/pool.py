"""The server's execution backend: a warm worker pool behind dispatchers.

A :class:`ServePool` turns one run request into a
:class:`concurrent.futures.Future` the asyncio layer can await via
``asyncio.wrap_future``. Two modes:

* ``workers > 0`` — simulations run on the process-wide
  :func:`~repro.sim.parallel.shared_warm_pool`, so the server's
  ``POST /run`` traffic and its ``POST /matrix`` sweeps (and any
  in-process ``run_matrix(pool=shared_warm_pool())`` callers) reuse the
  same warm, pre-initialised workers instead of paying spawn cost per
  request. A :class:`BrokenProcessPool` rebuilds the pool and retries
  the cell once — the same crash recovery the matrix supervisor has.
* ``workers == 0`` — simulations run on the dispatch threads themselves
  (no subprocesses). This keeps everything in-process, which is what the
  tests want: a monkeypatched ``run_trace`` is visible, and results land
  directly in this process's run cache.

Either way the cell goes through the exact code path the CLI uses
(:func:`repro.sim.parallel._execute_cell` calling
:func:`repro.sim.runner.run_cached`), which is what makes the served
result byte-identical to a CLI run of the same config.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from repro.sim.parallel import (
    WarmPool,
    _execute_cell,
    _worker_cell,
    shared_warm_pool,
)

#: Dispatch threads: enough to keep a pool of workers fed and still
#: overlap many coalesced/cached requests; they are I/O-ish (waiting on
#: worker futures), not compute threads.
DISPATCH_THREADS = 8


class ServePool:
    """Request-level execution front over a (possibly warm) worker pool."""

    def __init__(self, workers: int = 0):
        self.workers = max(0, int(workers))
        self._lock = threading.Lock()
        self._closed = False
        self._dispatch = ThreadPoolExecutor(
            max_workers=DISPATCH_THREADS, thread_name_prefix="serve-dispatch"
        )
        self._warm: Optional[WarmPool] = None
        if self.workers > 0:
            self._warm = shared_warm_pool(self.workers).acquire()

    @property
    def warm_pool(self) -> Optional[WarmPool]:
        """The shared warm pool (``POST /matrix`` borrows it), or None."""
        return self._warm

    def submit(self, request, telemetry_spec=None) -> Future:
        """Run one cell; resolves to ``(result, telemetry_payload)``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ServePool is closed")
        return self._dispatch.submit(self._run_cell, request, telemetry_spec)

    def _run_cell(self, request, telemetry_spec):
        if self._warm is None:
            return _execute_cell(
                request, 1, None, telemetry_spec, in_pool=False
            )
        task = (request, 1, None, telemetry_spec, ())
        try:
            return self._warm.executor().submit(_worker_cell, task).result()
        except BrokenProcessPool:
            # One retry on a fresh pool: a crashed worker must not fail a
            # request that never got to run.
            self._warm.rebuild()
            return self._warm.executor().submit(_worker_cell, task).result()

    def describe(self) -> dict:
        info = {
            "workers": self.workers,
            "mode": "process" if self._warm is not None else "in-thread",
        }
        if self._warm is not None:
            info["warm_pool"] = self._warm.describe()
        return info

    def close(self) -> None:
        """Release the warm pool (workers stay warm for the process) and
        stop accepting submissions. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._dispatch.shutdown(wait=True, cancel_futures=True)
        if self._warm is not None:
            self._warm.release()
