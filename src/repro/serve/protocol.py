"""Wire forms for the serve subsystem: configs, run and matrix bodies.

The server speaks plain JSON. A *config wire form* is any of:

* a profile name string (``"fast"``, ``"paper"``, ``"mix2"``,
  ``"mix4"``, ``"hugepage"``, ``"leeway"``, or ``"perceptron"``);
* a dict with an optional ``"profile"`` key plus flat
  :class:`~repro.sim.config.SystemConfig` field overrides — nested
  geometry/timing fields may be given as dicts, and the page-walk-cache
  tuples as lists (JSON has no tuples);
* the full dict :func:`config_to_wire` produces (every field present),
  which round-trips to an equal frozen config.

Round-tripping matters because the byte-identity contract — a served
result equals the CLI's result for the same config — only holds if both
sides hash the *same* frozen :class:`SystemConfig`.

Malformed input raises :class:`ProtocolError`, which the server maps to
HTTP 400 (never 500: a bad request is the client's bug, not ours).
"""

from __future__ import annotations

from dataclasses import asdict, fields, replace
from typing import List, Optional, Tuple

import repro.sim.diskcache as diskcache
from repro.obs.telemetry import TelemetrySpec
from repro.sim.config import (
    CacheGeometry,
    SystemConfig,
    TimingConfig,
    TlbGeometry,
    fast_config,
    hugepage_config,
    leeway_config,
    mix2_config,
    mix4_config,
    paper_config,
    perceptron_config,
)
from repro.sim.parallel import RunRequest
from repro.sim.runner import DEFAULT_SEED
from repro.workloads.suite import DEFAULT_BUDGET, all_workload_names


class ProtocolError(ValueError):
    """A request body the server cannot honour (HTTP 400)."""


#: Named base profiles a wire config may start from.
PROFILES = {
    "fast": fast_config,
    "paper": paper_config,
    "mix2": mix2_config,
    "mix4": mix4_config,
    "hugepage": hugepage_config,
    "leeway": leeway_config,
    "perceptron": perceptron_config,
}

#: Nested dataclass fields a wire config may give as plain dicts.
_NESTED = {
    "l1_itlb": TlbGeometry,
    "l1_dtlb": TlbGeometry,
    "l2_tlb": TlbGeometry,
    "l1d": CacheGeometry,
    "l2": CacheGeometry,
    "llc": CacheGeometry,
    "timing": TimingConfig,
}

#: Tuple-typed fields JSON delivers as lists.
_TUPLE_FIELDS = ("pwc_entries", "pwc_latencies")


def config_to_wire(config: SystemConfig) -> dict:
    """JSON-safe dict form of a frozen config (full field set)."""
    return asdict(config)


def config_from_wire(spec) -> SystemConfig:
    """Rebuild a frozen :class:`SystemConfig` from its wire form."""
    if isinstance(spec, str):
        base = PROFILES.get(spec)
        if base is None:
            raise ProtocolError(
                f"unknown config profile {spec!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        return base()
    if not isinstance(spec, dict):
        raise ProtocolError(
            f"config must be a profile name or an object, "
            f"got {type(spec).__name__}"
        )
    data = dict(spec)
    profile = data.pop("profile", "fast")
    base = PROFILES.get(profile)
    if base is None:
        raise ProtocolError(
            f"unknown config profile {profile!r}; "
            f"choose from {sorted(PROFILES)}"
        )
    known = {f.name for f in fields(SystemConfig)}
    unknown = set(data) - known
    if unknown:
        raise ProtocolError(f"unknown config fields: {sorted(unknown)}")
    overrides = {}
    for name, value in data.items():
        cls = _NESTED.get(name)
        try:
            if cls is not None and isinstance(value, dict):
                value = cls(**value)
            elif name in _TUPLE_FIELDS and isinstance(value, list):
                value = tuple(value)
        except TypeError as exc:
            raise ProtocolError(f"bad {name!r} value: {exc}")
        overrides[name] = value
    try:
        config = replace(base(), **overrides)
        config.validate()
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config: {exc}")
    return config


def _parse_telemetry(value) -> Optional[TelemetrySpec]:
    if value is None or value is False:
        return None
    if value is True:
        return TelemetrySpec()
    if isinstance(value, dict):
        try:
            spec = TelemetrySpec(**value)
            spec.validate()
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid telemetry spec: {exc}")
        return spec
    raise ProtocolError(
        f"telemetry must be a bool or an object, got {type(value).__name__}"
    )


def _int_field(body: dict, name: str, default: int) -> int:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer")
    if value <= 0 and name == "budget":
        raise ProtocolError(f"budget must be positive, got {value}")
    return value


def parse_run_body(
    body,
) -> Tuple[RunRequest, Optional[TelemetrySpec], bool]:
    """Validate one run description: ``(request, telemetry_spec, stream)``.

    ``stream`` implies telemetry (a timeline is what gets streamed); a
    bare ``{"stream": true}`` gets the default spec.
    """
    if not isinstance(body, dict):
        raise ProtocolError("run body must be a JSON object")
    workload = body.get("workload")
    if not isinstance(workload, str):
        raise ProtocolError("run body needs a workload name")
    if workload not in all_workload_names():
        raise ProtocolError(
            f"unknown workload {workload!r}; "
            f"choose from {all_workload_names()}"
        )
    config = config_from_wire(body.get("config", "fast"))
    budget = _int_field(body, "budget", DEFAULT_BUDGET)
    seed = _int_field(body, "seed", DEFAULT_SEED)
    request = RunRequest(workload, config, budget, seed)
    spec = _parse_telemetry(body.get("telemetry"))
    stream = bool(body.get("stream", False))
    if stream and spec is None:
        spec = TelemetrySpec()
    if stream and not spec.timeline:
        raise ProtocolError("streaming needs a timeline-enabled spec")
    return request, spec, stream


def parse_matrix_body(body) -> Tuple[List[RunRequest], Optional[int]]:
    """Validate a matrix description: ``(requests, jobs)``."""
    if not isinstance(body, dict):
        raise ProtocolError("matrix body must be a JSON object")
    cells = body.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ProtocolError("matrix body needs a non-empty cells list")
    requests = []
    for i, cell in enumerate(cells):
        try:
            request, spec, stream = parse_run_body(cell)
        except ProtocolError as exc:
            raise ProtocolError(f"cells[{i}]: {exc}")
        if spec is not None or stream:
            raise ProtocolError(
                f"cells[{i}]: matrix cells take neither telemetry nor stream"
            )
        requests.append(request)
    jobs = body.get("jobs")
    if jobs is not None and (
        isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1
    ):
        raise ProtocolError("jobs must be a positive integer")
    return requests, jobs


def run_key(
    request: RunRequest, telemetry_spec: Optional[TelemetrySpec] = None
) -> str:
    """Coalescing/provenance key for one run request.

    Plain runs use the disk-cache result key verbatim, so a server
    request coalesces with an in-flight ``run_matrix`` cell for the same
    config hash. Observed runs append a spec marker: they carry dynamics
    a plain run does not, so the two must never coalesce (observed runs
    still coalesce with *identical* observed requests).
    """
    key = diskcache.result_key(
        request.workload, request.config, request.budget, request.seed
    )
    if telemetry_spec is not None:
        key = f"{key}|obs:{telemetry_spec!r}"
    return key
