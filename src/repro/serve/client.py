"""Stdlib HTTP client for the simulation server.

Thin :mod:`http.client` wrapper used by the tests, the CI smoke script,
and anyone driving a server from Python without pulling in a dependency.
``run``/``matrix``/``status`` return parsed JSON; the ``*_bytes``
variants return the raw response body for byte-identity assertions;
``stream_run`` yields the NDJSON rows of a streamed run as dicts.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, Optional


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, body: bytes):
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: {body.decode(errors='replace')}")


class ServeClient:
    """One server address; a fresh connection per request (the server
    closes connections after each response anyway)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str, body=None) -> dict:
        status, raw = self._request(method, path, body)
        if status != 200:
            raise ServeError(status, raw)
        return json.loads(raw.decode())

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> bool:
        try:
            return self._json("GET", "/healthz").get("ok", False)
        except (OSError, ServeError):
            return False

    def status(self) -> dict:
        return self._json("GET", "/status")

    def run(
        self,
        workload: str,
        config="fast",
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        telemetry=None,
    ) -> dict:
        return json.loads(
            self.run_bytes(
                workload, config, budget=budget, seed=seed,
                telemetry=telemetry,
            ).decode()
        )

    def run_bytes(
        self,
        workload: str,
        config="fast",
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        telemetry=None,
    ) -> bytes:
        """Raw ``POST /run`` response body (byte-identity assertions)."""
        body = {"workload": workload, "config": config}
        if budget is not None:
            body["budget"] = budget
        if seed is not None:
            body["seed"] = seed
        if telemetry is not None:
            body["telemetry"] = telemetry
        status, raw = self._request("POST", "/run", body)
        if status != 200:
            raise ServeError(status, raw)
        return raw

    def stream_run(
        self,
        workload: str,
        config="fast",
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        telemetry=None,
    ) -> Iterator[dict]:
        """Yield the NDJSON rows of a streamed run, in arrival order."""
        body = {"workload": workload, "config": config, "stream": True}
        if budget is not None:
            body["budget"] = budget
        if seed is not None:
            body["seed"] = seed
        if telemetry is not None:
            body["telemetry"] = telemetry
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST", "/run", body=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()  # http.client de-chunks for us
            if response.status != 200:
                raise ServeError(response.status, response.read())
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def matrix(self, cells: list, jobs: Optional[int] = None) -> dict:
        body = {"cells": cells}
        if jobs is not None:
            body["jobs"] = jobs
        return self._json("POST", "/matrix", body)

    def result_bytes(self, key: str) -> Optional[bytes]:
        """Raw stored payload for ``key``, or None when not stored."""
        status, raw = self._request("GET", f"/result/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServeError(status, raw)
        return raw
