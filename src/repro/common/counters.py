"""Saturating counters, the basic confidence element of every predictor here.

The paper uses 3-bit saturating counters in both ``pHIST`` (dead-page
history) and ``bHIST`` (dead-block history), incremented when a true DOA
entry is observed at eviction and cleared when a non-DOA entry is observed.
"""

from __future__ import annotations

from repro.common.bitops import mask


class SaturatingCounter:
    """A single up/down counter saturating at ``[0, 2**width - 1]``.

    >>> c = SaturatingCounter(width=2)
    >>> for _ in range(5):
    ...     _ = c.increment()
    >>> c.value
    3
    """

    __slots__ = ("_value", "_max")

    def __init__(self, width: int, initial: int = 0):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._max = mask(width)
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial {initial} out of range [0, {self._max}]")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self) -> int:
        """Increment by one, saturating at the maximum. Returns new value."""
        if self._value < self._max:
            self._value += 1
        return self._value

    def decrement(self) -> int:
        """Decrement by one, saturating at zero. Returns new value."""
        if self._value > 0:
            self._value -= 1
        return self._value

    def clear(self) -> None:
        """Reset to zero (the paper's negative-feedback action)."""
        self._value = 0

    def is_above(self, threshold: int) -> bool:
        """True when the counter is strictly above ``threshold``."""
        return self._value > threshold

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(value={self._value}, max={self._max})"


class CounterArray:
    """A flat array of saturating counters, stored as plain ints for speed.

    Predictor history tables contain hundreds to thousands of counters that
    are touched on every fill and eviction, so this avoids one object per
    counter. Indexing is the caller's responsibility (1-D flat index).
    """

    __slots__ = ("_values", "_max")

    def __init__(self, size: int, width: int, initial: int = 0):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._max = mask(width)
        if not 0 <= initial <= self._max:
            raise ValueError(f"initial {initial} out of range [0, {self._max}]")
        self._values = [initial] * size

    def __len__(self) -> int:
        return len(self._values)

    @property
    def max_value(self) -> int:
        return self._max

    def get(self, index: int) -> int:
        return self._values[index]

    def increment(self, index: int) -> int:
        v = self._values[index]
        if v < self._max:
            v += 1
            self._values[index] = v
        return v

    def decrement(self, index: int) -> int:
        v = self._values[index]
        if v > 0:
            v -= 1
            self._values[index] = v
        return v

    def clear(self, index: int) -> None:
        self._values[index] = 0

    def clear_all(self) -> None:
        for i in range(len(self._values)):
            self._values[i] = 0

    def is_above(self, index: int, threshold: int) -> bool:
        return self._values[index] > threshold
