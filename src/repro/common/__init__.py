"""Shared primitives: bit manipulation, saturating counters, statistics."""

from repro.common.bitops import fold_xor, is_power_of_two, log2_exact, mask
from repro.common.counters import CounterArray, SaturatingCounter
from repro.common.residency import ResidencySummary, ResidencyTracker
from repro.common.stats import (
    Stats,
    arithmetic_mean,
    geometric_mean,
    percent,
    safe_reduction,
)

__all__ = [
    "fold_xor",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "CounterArray",
    "SaturatingCounter",
    "ResidencySummary",
    "ResidencyTracker",
    "Stats",
    "arithmetic_mean",
    "geometric_mean",
    "percent",
    "safe_reduction",
]
