"""Residency tracking: the measurement instrument behind Figures 1-4.

A *residency* is one stay of an entry (page in the LLT, block in the LLC)
between its fill and its eviction. The paper characterises structures two
ways:

* **Sampled / time-weighted deadness** (Figures 1 and 3): at a random
  instant, what fraction of resident entries are *dead* (will receive no
  further hit before eviction)? Rather than literally sampling snapshots we
  integrate exactly over time: an entry is dead from its last hit (or its
  fill, if it never hits) until its eviction, so

      dead_fraction = sum(evict_t - last_hit_t) / sum(evict_t - fill_t)
      doa_fraction  = sum(evict_t - fill_t, over zero-hit residencies) / same

* **Eviction-time classification** (Figures 2 and 4): at eviction, an entry
  is *DOA* if it produced zero hits, *mostly dead* if dead-time > live-time
  but it had at least one hit, and *mostly live* otherwise.

Time here is the simulator's access tick (monotone event counter), which is
what Sniper-style sampling would observe too.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ResidencySummary:
    """Aggregated deadness statistics over all completed residencies."""

    residencies: int = 0
    total_time: float = 0.0
    dead_time: float = 0.0
    doa_time: float = 0.0
    doa_evictions: int = 0
    mostly_dead_evictions: int = 0
    mostly_live_evictions: int = 0

    @property
    def dead_fraction(self) -> float:
        """Time-weighted fraction of resident entries that are dead."""
        return self.dead_time / self.total_time if self.total_time else 0.0

    @property
    def doa_fraction(self) -> float:
        """Time-weighted fraction of resident entries that are DOA."""
        return self.doa_time / self.total_time if self.total_time else 0.0

    @property
    def doa_eviction_fraction(self) -> float:
        """Fraction of evictions classified DOA (Figure 2/4 lower stack)."""
        return self.doa_evictions / self.residencies if self.residencies else 0.0

    @property
    def mostly_dead_eviction_fraction(self) -> float:
        """Fraction of evictions that were mostly dead but not DOA."""
        return (
            self.mostly_dead_evictions / self.residencies
            if self.residencies
            else 0.0
        )

    @property
    def dead_eviction_fraction(self) -> float:
        """Total height of the Figure 2/4 stacked bar (DOA + mostly dead)."""
        return self.doa_eviction_fraction + self.mostly_dead_eviction_fraction


class ResidencyTracker:
    """Accumulates ``ResidencySummary`` from fill/hit/evict events.

    The owning structure calls :meth:`fill`, :meth:`hit`, and :meth:`evict`
    with an opaque per-entry key (e.g. ``(set, way)``) and the current tick.
    Memory use is O(currently resident entries).
    """

    __slots__ = ("_live", "summary")

    def __init__(self) -> None:
        # key -> [fill_t, last_hit_t, hit_count]
        self._live: dict = {}
        self.summary = ResidencySummary()

    def fill(self, key, now: int) -> None:
        self._live[key] = [now, now, 0]

    def hit(self, key, now: int) -> None:
        rec = self._live.get(key)
        if rec is not None:
            rec[1] = now
            rec[2] += 1

    def evict(self, key, now: int) -> None:
        rec = self._live.pop(key, None)
        if rec is None:
            return
        fill_t, last_hit_t, hits = rec
        total = now - fill_t
        if total <= 0:
            # Zero-duration residencies carry no time weight but still count
            # toward eviction classification.
            total = 0
        dead = now - last_hit_t
        s = self.summary
        s.residencies += 1
        s.total_time += total
        s.dead_time += dead if hits else total
        if hits == 0:
            s.doa_time += total
            s.doa_evictions += 1
        else:
            live = last_hit_t - fill_t
            if dead > live:
                s.mostly_dead_evictions += 1
            else:
                s.mostly_live_evictions += 1

    def flush(self, now: int) -> None:
        """Evict every live residency (end-of-simulation accounting)."""
        for key in list(self._live):
            self.evict(key, now)

    @property
    def live_count(self) -> int:
        return len(self._live)
