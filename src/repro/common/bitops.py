"""Bit-manipulation helpers shared across the simulator.

The paper's predictors index their history tables with small hashes of the
program counter, the virtual page number, and the physical block address.
All of them are *fold-XOR* hashes: the value is split into ``width``-bit
subblocks which are XOR-ed together (Section V-A: "The hash is computed by
dividing the PC into subblocks and XOR-ing them").
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return a bitmask with the low ``width`` bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def fold_xor(value: int, width: int, input_bits: int = 64) -> int:
    """Fold ``value`` into ``width`` bits by XOR-ing ``width``-bit subblocks.

    This is the hash function used for h(PC), h(VPN) and h(block address)
    throughout the paper's predictor designs.

    ``input_bits`` bounds how much of ``value`` participates; higher bits are
    discarded first (addresses are at most 64 bits here).

    >>> fold_xor(0b1010_0101, 4)
    15
    >>> fold_xor(0, 6)
    0
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(input_bits)
    result = 0
    m = mask(width)
    while value:
        result ^= value & m
        value >>= width
    return result


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two.

    >>> is_power_of_two(8)
    True
    >>> is_power_of_two(12)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power-of-two ``value``; raise otherwise.

    >>> log2_exact(1024)
    10
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of a power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def bits_to_bytes(bits: int) -> float:
    """Convert a bit count to bytes (used by the storage-overhead analysis)."""
    return bits / 8.0
