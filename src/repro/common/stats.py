"""Lightweight named-counter statistics used by every simulated structure."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping


class Stats:
    """A bag of named integer counters with derived-ratio helpers.

    Structures own a :class:`Stats` and bump counters with :meth:`add`;
    experiments read them through :meth:`snapshot` or :meth:`ratio`.
    Hot paths (cache/TLB lookups run millions of times per simulation) may
    hoist :attr:`counters` once and update it inline — a method call per
    bump is measurable there. Everyone else should go through the methods.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        #: The live name -> count mapping. Mutating it directly is the
        #: supported fast path; reads always see the current values.
        self.counters: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        den = self.counters.get(denominator, 0)
        if den == 0:
            return 0.0
        return self.counters.get(numerator, 0) / den

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def nonzero(self) -> Dict[str, int]:
        """Only the counters with non-zero values.

        Structures pre-seed hot counters to 0, so two semantically equal
        stats bags can differ in which zero-valued names they carry;
        comparisons (differential tests, baseline diffs) should compare
        this view, not raw :meth:`snapshot` output.
        """
        return {k: v for k, v in self.counters.items() if v}

    def merge(self, other: "Stats") -> None:
        for name, value in other.counters.items():
            self.add(name, value)

    def delta(self, prev: Mapping[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`.

        The result covers the union of current and previous names (a name
        only in ``prev`` yields a negative delta, which monotone counters
        never produce in practice). This is the primitive behind the
        interval timeline sampler in :mod:`repro.obs.timeline`.
        """
        counters = self.counters
        out = {
            name: value - prev.get(name, 0)
            for name, value in counters.items()
        }
        for name, value in prev.items():
            if name not in counters:
                out[name] = -value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Stats({inner})"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (paper's IPC-average convention).

    >>> round(geometric_mean([1.0, 4.0]), 3)
    2.0
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def percent(value: float) -> float:
    """Convert a fraction to percent, for report rendering."""
    return 100.0 * value


def safe_reduction(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``.

    Positive means ``improved`` is lower (better for MPKI). Returns 0 when
    the baseline is zero, mirroring the paper's 0.0 rows for workloads with
    negligible misses.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def format_mapping(data: Mapping[str, float], precision: int = 2) -> str:
    """Render a mapping as aligned ``key: value`` lines (debug/report aid)."""
    if not data:
        return "(empty)"
    width = max(len(k) for k in data)
    return "\n".join(f"{k.ljust(width)} : {v:.{precision}f}" for k, v in data.items())
