"""A generic set-associative cache with predictor hooks.

This models one level of the data-cache hierarchy (L1D, L2, or the LLC).
Addresses handed to the cache are *block* addresses (physical address with
the block-offset bits already stripped). The cache supports:

* pluggable replacement (see :mod:`repro.mem.replacement`),
* a predictor attached via :class:`CacheListener` that can observe hits,
  evictions, and fills, bypass an incoming block, or demote an insertion to
  the distant/LRU position (how SHiP is adapted here),
* inclusion support (external invalidation, victim reporting),
* residency tracking for the Figure 3/4 deadness characterisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.bitops import is_power_of_two
from repro.common.residency import ResidencyTracker
from repro.common.stats import Stats
from repro.mem.replacement import LruPolicy, ReplacementPolicy, make_policy


class CacheLine:
    """One cache line's bookkeeping state.

    ``accessed`` and ``dp`` are the two per-block bits cbPred adds to the
    LLC (Section V-B); ``aux`` is a free slot for baseline predictors
    (e.g. SHiP signatures, AIP counters).
    """

    __slots__ = ("tag", "dirty", "accessed", "dp", "aux")

    def __init__(self, tag: int, dirty: bool):
        self.tag = tag
        self.dirty = dirty
        self.accessed = False
        self.dp = False
        self.aux = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheLine(tag={self.tag:#x}, dirty={self.dirty}, "
            f"accessed={self.accessed}, dp={self.dp})"
        )


# --------------------------------------------------------------------- #
# CacheLine flyweight pool
#
# Fills allocate a CacheLine per install; on miss-heavy suites that is
# millions of short-lived objects. Evicted lines are returned here once
# their owner (the hierarchy's fill cascade or the flat engine tier) has
# finished writeback/predictor training, and the next fill reuses them
# reset-in-place. Listeners never retain line references past on_evict
# (they copy ``aux``/``accessed`` into their own tables), so reuse is
# invisible to simulation results. The cap only bounds idle pool memory.
# --------------------------------------------------------------------- #
_LINE_POOL: List[CacheLine] = []
_LINE_POOL_CAP = 8192


def acquire_line(tag: int, dirty: bool) -> CacheLine:
    """Pop a reset CacheLine from the pool, or allocate a fresh one."""
    pool = _LINE_POOL
    if pool:
        line = pool.pop()
        line.tag = tag
        line.dirty = dirty
        line.accessed = False
        line.dp = False
        line.aux = None
        return line
    return CacheLine(tag, dirty)


def release_line(line: Optional[CacheLine]) -> None:
    """Return an evicted line to the pool once no caller references it."""
    if line is not None and len(_LINE_POOL) < _LINE_POOL_CAP:
        _LINE_POOL.append(line)


class CacheListener:
    """Predictor-side hooks. The default implementation is a no-op."""

    def on_lookup(self, cache: "SetAssocCache", set_idx: int, now: int) -> None:
        """Any lookup touched ``set_idx`` (hit or miss). Used by interval-
        counting predictors such as AIP."""

    def on_hit(self, cache: "SetAssocCache", line: CacheLine, now: int) -> None:
        """A lookup hit ``line``."""

    def on_fill(self, cache: "SetAssocCache", block: int, now: int) -> str:
        """An incoming block is about to be installed.

        Returns one of ``"allocate"``, ``"bypass"``, ``"distant"``.
        """
        return "allocate"

    def filled(self, cache: "SetAssocCache", line: CacheLine, now: int) -> None:
        """``line`` was installed (not called on bypass)."""

    def on_evict(self, cache: "SetAssocCache", line: CacheLine, now: int) -> None:
        """``line`` is being evicted (training opportunity)."""

    def choose_victim(
        self, cache: "SetAssocCache", set_idx: int, lines: list, now: int
    ) -> Optional[int]:
        """Override victim selection for a full set.

        Return a way index to evict it instead of the replacement policy's
        choice, or None to defer to the policy. Used by predictors that
        *prioritise predicted-dead entries for victimisation* (e.g. AIP).
        """
        return None


FILL_ALLOCATE = "allocate"
FILL_BYPASS = "bypass"
FILL_DISTANT = "distant"


class SetAssocCache:
    """Set-associative cache keyed by block address."""

    def __init__(
        self,
        name: str,
        num_sets: int,
        assoc: int,
        policy: str = "lru",
        listener: Optional[CacheListener] = None,
        track_residency: bool = False,
    ):
        if not is_power_of_two(num_sets):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if assoc <= 0:
            raise ValueError(f"assoc must be positive, got {assoc}")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self._set_mask = num_sets - 1
        self.policy: ReplacementPolicy = make_policy(policy, num_sets, assoc)
        # None (the common, predictor-less case) lets the access path skip
        # listener dispatch entirely instead of calling no-op hooks.
        self.listener = listener
        self._lines: List[List[Optional[CacheLine]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._tags: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self.stats = Stats()
        # Hot-path aliases: the live counter dict (bumped inline — a Stats
        # method call per event is measurable at millions of events) and
        # bound policy hooks (the policy never changes after construction).
        # Counters are pre-seeded so bumps are plain `+= 1`, no .get().
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("hits", "misses", "fills", "evictions", "writebacks",
             "bypasses", "invalidations"), 0,
        ))
        self._policy_on_hit = self.policy.on_hit
        self._policy_on_fill = self.policy.on_fill
        self._policy_victim = self.policy.victim
        # LRU (the default everywhere) gets its stamp updates fused into
        # the access path — same state transitions, no method dispatch.
        self._lru = (
            self.policy if type(self.policy) is LruPolicy else None
        )
        self._lru_stamps = (
            self._lru._stamp if self._lru is not None else None
        )
        # Incremental min-stamp victim tracking (LRU only): per set, a
        # cached ``(way, stamp)`` candidate for the next victim. Stamps
        # only ever increase on hit/fill, so if the candidate's stamp is
        # unchanged it still holds the set minimum and the O(assoc) scan
        # is skipped; any touch to that way invalidates it by value.
        # Distant insertions write a *below*-min stamp and therefore
        # re-point the candidate explicitly (see :meth:`fill`).
        self._vic_way: List[int] = [-1] * num_sets
        self._vic_stamp: List[int] = [0] * num_sets
        self.residency: Optional[ResidencyTracker] = (
            ResidencyTracker() if track_residency else None
        )
        # Monotone membership version: bumped whenever the set of resident
        # blocks changes (install, eviction, invalidation) — hits never
        # bump it. The batched engine's numpy tag mirror (see
        # :meth:`mirror_into`) revalidates against this before each window.
        self.content_version = 0

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.assoc

    def set_index(self, block: int) -> int:
        return block & self._set_mask

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def probe(self, block: int) -> Optional[CacheLine]:
        """Tag check with no side effects (no promotion, no stats)."""
        set_idx = block & self._set_mask
        way = self._tags[set_idx].get(block)
        if way is None:
            return None
        return self._lines[set_idx][way]

    def lookup(self, block: int, now: int, is_write: bool = False) -> bool:
        """Full lookup: promotes on hit, updates stats and residency.

        Returns True on hit. Misses do *not* allocate; callers fill
        explicitly after fetching from the next level, which is where the
        bypass decision belongs.
        """
        set_idx = block & self._set_mask
        listener = self.listener
        if listener is not None:
            listener.on_lookup(self, set_idx, now)
        stat = self._stat
        way = self._tags[set_idx].get(block)
        if way is None:
            stat["misses"] += 1
            return False
        line = self._lines[set_idx][way]
        stat["hits"] += 1
        line.accessed = True
        if is_write:
            line.dirty = True
        lru = self._lru
        if lru is not None:
            lru._clock += 1
            self._lru_stamps[set_idx][way] = lru._clock
        else:
            self._policy_on_hit(set_idx, way)
        if self.residency is not None:
            self.residency.hit((set_idx, way), now)
        if listener is not None:
            listener.on_hit(self, line, now)
        return True

    def fill(
        self, block: int, now: int, is_write: bool = False
    ) -> Optional[CacheLine]:
        """Install ``block``; returns the evicted line, if any.

        The listener may bypass the fill entirely (returns None, counts a
        bypass) or request distant insertion. Filling a block that is
        already present is a no-op (can happen with a victim-buffer race).
        """
        set_idx = block & self._set_mask
        tags = self._tags[set_idx]
        if block in tags:
            return None
        listener = self.listener
        distant = False
        if listener is not None:
            decision = listener.on_fill(self, block, now)
            if decision == FILL_BYPASS:
                self._stat["bypasses"] += 1
                return None
            distant = decision == FILL_DISTANT

        lines = self._lines[set_idx]
        victim_line: Optional[CacheLine] = None
        way = None
        # len(tags) counts the set's valid lines; a full set (the steady
        # state) skips the free-way scan entirely.
        if len(tags) < self.assoc:
            for w, existing in enumerate(lines):
                if existing is None:
                    way = w
                    break
        lru = self._lru
        if way is None:
            if listener is not None:
                way = listener.choose_victim(self, set_idx, lines, now)
            if way is None:
                if lru is not None:
                    row = self._lru_stamps[set_idx]
                    way = self._vic_way[set_idx]
                    if way >= 0 and row[way] == self._vic_stamp[set_idx]:
                        # Candidate untouched since recorded: every other
                        # stamp only grew, so it still holds the minimum.
                        self._vic_way[set_idx] = -1
                    else:
                        # One scan finds the victim and caches the runner-
                        # up: once the victim way is refilled with a fresh
                        # maximal stamp, the second-smallest is the min.
                        way = 0
                        best = row[0]
                        run_way = -1
                        run_stamp = 0
                        for w in range(1, self.assoc):
                            s = row[w]
                            if s < best:
                                run_way, run_stamp = way, best
                                way, best = w, s
                            elif run_way < 0 or s < run_stamp:
                                run_way, run_stamp = w, s
                        self._vic_way[set_idx] = run_way
                        self._vic_stamp[set_idx] = run_stamp
                else:
                    way = self._policy_victim(set_idx)
            victim_line = self._evict_way(set_idx, way, now)

        line = acquire_line(block, is_write)
        lines[way] = line
        tags[block] = way
        self.content_version += 1
        if lru is not None and not distant:
            lru._clock += 1
            self._lru_stamps[set_idx][way] = lru._clock
        else:
            self._policy_on_fill(set_idx, way, distant=distant)
            if lru is not None:
                # The distant insertion gave ``way`` a below-minimum
                # stamp: it is the set's next victim candidate.
                self._vic_way[set_idx] = way
                self._vic_stamp[set_idx] = self._lru_stamps[set_idx][way]
        self._stat["fills"] += 1
        if self.residency is not None:
            self.residency.fill((set_idx, way), now)
        if listener is not None:
            listener.filled(self, line, now)
        return victim_line

    def invalidate(self, block: int, now: int) -> Optional[CacheLine]:
        """Remove ``block`` (inclusion victim from an outer level)."""
        set_idx = block & self._set_mask
        way = self._tags[set_idx].get(block)
        if way is None:
            return None
        self._stat["invalidations"] += 1
        return self._evict_way(set_idx, way, now, external=True)

    def _evict_way(
        self, set_idx: int, way: int, now: int, external: bool = False
    ) -> CacheLine:
        line = self._lines[set_idx][way]
        assert line is not None
        del self._tags[set_idx][line.tag]
        self._lines[set_idx][way] = None
        self.content_version += 1
        stat = self._stat
        stat["evictions"] += 1
        if line.dirty:
            stat["writebacks"] += 1
        if self.residency is not None:
            self.residency.evict((set_idx, way), now)
        if external:
            self.policy.on_invalidate(set_idx, way)
        if self.listener is not None:
            self.listener.on_evict(self, line, now)
        return line

    # ------------------------------------------------------------------ #
    # Vectorized-engine support
    # ------------------------------------------------------------------ #
    def mirror_into(self, tags) -> None:
        """Export resident block addresses into a (num_sets, assoc) numpy
        array (empty ways keep the caller's sentinel). See
        :meth:`repro.vm.tlb.Tlb.mirror_into`; the batched engine
        revalidates the mirror via :attr:`content_version`."""
        for set_idx, ways in enumerate(self._lines):
            for way, line in enumerate(ways):
                if line is not None:
                    tags[set_idx, way] = line.tag

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def resident_blocks(self) -> List[int]:
        """All block addresses currently cached (test/inspection helper)."""
        return [
            line.tag
            for ways in self._lines
            for line in ways
            if line is not None
        ]

    def occupancy(self) -> int:
        return sum(len(t) for t in self._tags)

    def flush_residency(self, now: int) -> None:
        """Close out live residencies at end of simulation."""
        if self.residency is not None:
            self.residency.flush(now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssocCache({self.name}, sets={self.num_sets}, "
            f"assoc={self.assoc}, policy={self.policy.name()})"
        )
