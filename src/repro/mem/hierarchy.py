"""Three-level inclusive data-cache hierarchy.

Models the L1D / L2 / LLC chain of Table I. The LLC is inclusive: evicting
an LLC line back-invalidates it from L1 and L2 (the paper's baseline LLC is
"2MB per core, ..., inclusive"). Page-table walk accesses enter the
hierarchy at the L2, matching the usual hardware-walker attach point and
the paper's statement that "the page table contents are cached on the
processor caches as in the real hardware".

Bypassed LLC fills (cbPred's action) still deliver the block to L1/L2 —
bypass changes *allocation*, not data delivery — so bypassed blocks live
only in the upper levels, as in inclusive-LLC bypass schemes the paper
cites [Gupta et al., IPDPS'13].
"""

from __future__ import annotations

from repro.common.stats import Stats
from repro.mem.cache import SetAssocCache, release_line
from repro.mem.mainmem import MainMemory


class CacheHierarchy:
    """L1D -> L2 -> LLC -> memory access path with inclusion."""

    def __init__(
        self,
        l1: SetAssocCache,
        l2: SetAssocCache,
        llc: SetAssocCache,
        memory: MainMemory,
        l1_latency: int = 5,
        l2_latency: int = 11,
        llc_latency: int = 40,
    ):
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.memory = memory
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.llc_latency = llc_latency
        self.stats = Stats()
        # Hot-path aliases: the caches never change after construction, and
        # the counter dict is bumped inline on the per-access path.
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(
            ("accesses", "llc_demand_misses", "walk_accesses",
             "inclusion_victims", "orphan_writebacks"), 0,
        ))
        self._l1_lookup = l1.lookup
        self._l2_lookup = l2.lookup
        self._llc_lookup = llc.lookup

    # ------------------------------------------------------------------ #
    # Demand accesses (from the core, physical block address)
    # ------------------------------------------------------------------ #
    def access(self, block: int, now: int, is_write: bool = False):
        """One demand access; returns ``(latency_cycles, level)``.

        ``level`` is one of ``"l1"``, ``"l2"``, ``"llc"``, ``"mem"`` — the
        level that served the access; the timing model charges different
        exposed penalties per level.
        """
        stat = self._stat
        stat["accesses"] += 1
        if self._l1_lookup(block, now, is_write):
            return self.l1_latency, "l1"

        if self._l2_lookup(block, now, is_write):
            self._fill_l1(block, now, is_write)
            return self.l2_latency, "l2"

        if self._llc_lookup(block, now, is_write):
            self._fill_l2(block, now)
            self._fill_l1(block, now, is_write)
            return self.llc_latency, "llc"

        latency = self.llc_latency + self.memory.access(block, is_write)
        stat["llc_demand_misses"] += 1
        self._fill_llc(block, now)
        self._fill_l2(block, now)
        self._fill_l1(block, now, is_write)
        return latency, "mem"

    # ------------------------------------------------------------------ #
    # Page-walk accesses (from the page-table walker, enter at L2)
    # ------------------------------------------------------------------ #
    def walk_access(self, block: int, now: int) -> int:
        """One page-table load issued by the walker; returns latency."""
        self._stat["walk_accesses"] += 1
        if self._l2_lookup(block, now):
            return self.l2_latency
        if self._llc_lookup(block, now):
            self._fill_l2(block, now)
            return self.llc_latency
        latency = self.llc_latency + self.memory.access(block)
        self._fill_llc(block, now)
        self._fill_l2(block, now)
        return latency

    # ------------------------------------------------------------------ #
    # Fill helpers with inclusion maintenance
    # ------------------------------------------------------------------ #
    def _fill_l1(self, block: int, now: int, is_write: bool) -> None:
        victim = self.l1.fill(block, now, is_write)
        if victim is not None:
            if victim.dirty:
                # Dirty L1 victims write back into L2 (cascading outward if
                # the outer copies are already gone or were bypassed).
                self._writeback(victim.tag, level=1)
            release_line(victim)

    def _fill_l2(self, block: int, now: int) -> None:
        victim = self.l2.fill(block, now)
        if victim is not None:
            if victim.dirty:
                self._writeback(victim.tag, level=2)
            release_line(victim)

    def _fill_llc(self, block: int, now: int) -> None:
        victim = self.llc.fill(block, now)
        if victim is not None:
            # Inclusive LLC: the victim must disappear from upper levels.
            inner1 = self.l1.invalidate(victim.tag, now)
            inner2 = self.l2.invalidate(victim.tag, now)
            if inner1 is not None or inner2 is not None:
                self._stat["inclusion_victims"] += 1
            if victim.dirty or (inner1 and inner1.dirty) or (inner2 and inner2.dirty):
                self.memory.access(victim.tag, is_write=True)
            release_line(victim)
            release_line(inner1)
            release_line(inner2)

    def _writeback(self, block: int, level: int) -> None:
        """Propagate a dirty victim outward: mark the first outer level
        still holding the block dirty, or write to memory if none does
        (the copy was bypassed or already evicted). Writeback latency is
        off the critical path and not charged."""
        outer = (self.l2, self.llc)[level - 1:]
        for cache in outer:
            line = cache.probe(block)
            if line is not None:
                line.dirty = True
                return
        self.memory.access(block, is_write=True)
        self._stat["orphan_writebacks"] += 1

    # ------------------------------------------------------------------ #
    # End-of-run bookkeeping
    # ------------------------------------------------------------------ #
    def finalize(self, now: int) -> None:
        self.l1.flush_residency(now)
        self.l2.flush_residency(now)
        self.llc.flush_residency(now)

    def llc_mpki_counters(self) -> dict:
        """Raw hit/miss counters used for MPKI computation."""
        return {
            "llc_hits": self.llc.stats.get("hits"),
            "llc_misses": self.llc.stats.get("misses"),
        }
