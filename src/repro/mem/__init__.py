"""Memory-hierarchy substrate: caches, replacement policies, main memory."""

from repro.mem.cache import (
    FILL_ALLOCATE,
    FILL_BYPASS,
    FILL_DISTANT,
    CacheLine,
    CacheListener,
    SetAssocCache,
)
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mainmem import MainMemory
from repro.mem.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SrripPolicy,
    make_policy,
)

__all__ = [
    "FILL_ALLOCATE",
    "FILL_BYPASS",
    "FILL_DISTANT",
    "CacheLine",
    "CacheListener",
    "SetAssocCache",
    "CacheHierarchy",
    "MainMemory",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SrripPolicy",
    "make_policy",
]
