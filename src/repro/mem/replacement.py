"""Replacement policies for set-associative structures (caches and TLBs).

The baseline machine uses LRU everywhere (paper Section VI-A); the
sensitivity study in Figure 11f swaps in SRRIP [Jaleel et al., ISCA'10].
Policies also expose a *distant* insertion hint, which is how the paper
adapts SHiP to an LRU-managed structure: "we adapt SHiP to mark entries
predicted to have distant re-reference as LRU".

A policy instance is owned by exactly one cache/TLB and keeps its own
per-(set, way) state; the cache calls the event hooks below.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List


class ReplacementPolicy(ABC):
    """Event interface between a set-associative structure and its policy."""

    def __init__(self, num_sets: int, assoc: int):
        if num_sets <= 0 or assoc <= 0:
            raise ValueError(
                f"num_sets and assoc must be positive, got {num_sets}, {assoc}"
            )
        self.num_sets = num_sets
        self.assoc = assoc

    @abstractmethod
    def on_fill(self, set_idx: int, way: int, distant: bool = False) -> None:
        """A new entry was installed in ``(set_idx, way)``.

        ``distant`` marks the entry as predicted distant-re-reference, making
        it the preferred next victim.
        """

    @abstractmethod
    def on_hit(self, set_idx: int, way: int) -> None:
        """The entry in ``(set_idx, way)`` produced a hit (promotion)."""

    @abstractmethod
    def victim(self, set_idx: int) -> int:
        """Choose the way to evict from a full set."""

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """The entry was invalidated externally (e.g. inclusion victim)."""
        # Default: nothing; invalid ways are filled before victims are asked.

    def name(self) -> str:
        return type(self).__name__


class LruPolicy(ReplacementPolicy):
    """Least-recently-used via per-line monotone timestamps."""

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc)
        self._stamp: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def on_fill(self, set_idx: int, way: int, distant: bool = False) -> None:
        # A distant insertion is placed at the LRU position: give it a stamp
        # older than everything currently in the set.
        if distant:
            row = self._stamp[set_idx]
            row[way] = min(row) - 1
        else:
            self._clock += 1
            self._stamp[set_idx][way] = self._clock

    def on_hit(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def victim(self, set_idx: int) -> int:
        # First way holding the minimum stamp; min()/index() run at C speed.
        row = self._stamp[set_idx]
        return row.index(min(row))

    def name(self) -> str:
        return "LRU"


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: eviction order equals fill order."""

    def __init__(self, num_sets: int, assoc: int):
        super().__init__(num_sets, assoc)
        self._stamp: List[List[int]] = [[0] * assoc for _ in range(num_sets)]
        self._clock = 0

    def on_fill(self, set_idx: int, way: int, distant: bool = False) -> None:
        self._clock += 1
        row = self._stamp[set_idx]
        row[way] = (min(row) - 1) if distant else self._clock

    def on_hit(self, set_idx: int, way: int) -> None:
        pass  # hits do not reorder a FIFO

    def victim(self, set_idx: int) -> int:
        row = self._stamp[set_idx]
        return row.index(min(row))

    def name(self) -> str:
        return "FIFO"


class RandomPolicy(ReplacementPolicy):
    """Deterministic pseudo-random victim selection (LCG, seedable)."""

    def __init__(self, num_sets: int, assoc: int, seed: int = 0x5EED):
        super().__init__(num_sets, assoc)
        self._state = seed & 0xFFFFFFFF
        self._distant: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]

    def _next(self) -> int:
        # Numerical Recipes LCG constants; adequate for victim selection.
        self._state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._state

    def on_fill(self, set_idx: int, way: int, distant: bool = False) -> None:
        self._distant[set_idx][way] = distant

    def on_hit(self, set_idx: int, way: int) -> None:
        self._distant[set_idx][way] = False

    def victim(self, set_idx: int) -> int:
        row = self._distant[set_idx]
        for way in range(self.assoc):
            if row[way]:
                return way
        return self._next() % self.assoc

    def name(self) -> str:
        return "Random"


class SrripPolicy(ReplacementPolicy):
    """Static Re-reference Interval Prediction with 2-bit RRPVs.

    Fills insert at RRPV = max-1 ("long"); hits promote to RRPV = 0; the
    victim is the first way at RRPV = max, aging the whole set until one
    exists. A *distant* insertion starts at RRPV = max, i.e. next victim.
    """

    def __init__(self, num_sets: int, assoc: int, rrpv_bits: int = 2):
        super().__init__(num_sets, assoc)
        if rrpv_bits <= 0:
            raise ValueError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.rrpv_max = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = [
            [self.rrpv_max] * assoc for _ in range(num_sets)
        ]

    def on_fill(self, set_idx: int, way: int, distant: bool = False) -> None:
        self._rrpv[set_idx][way] = self.rrpv_max if distant else self.rrpv_max - 1

    def on_hit(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = 0

    def victim(self, set_idx: int) -> int:
        row = self._rrpv[set_idx]
        while True:
            for way in range(self.assoc):
                if row[way] == self.rrpv_max:
                    return way
            for way in range(self.assoc):
                row[way] += 1

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = self.rrpv_max

    def name(self) -> str:
        return "SRRIP"


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "srrip": SrripPolicy,
}


def make_policy(name: str, num_sets: int, assoc: int) -> ReplacementPolicy:
    """Construct a policy by its lowercase name (``lru``/``fifo``/``random``/``srrip``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, assoc)
