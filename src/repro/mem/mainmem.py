"""Main-memory model: a fixed-latency backing store with access counting.

The paper's baseline (Table I) charges 191 cycles per main-memory access.
Bandwidth and bank contention are out of scope — the predictors change
*how often* memory is touched, which is what the counters capture.
"""

from __future__ import annotations

from repro.common.stats import Stats


class MainMemory:
    """Fixed-latency DRAM stand-in."""

    def __init__(self, latency: int = 191):
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        self.latency = latency
        self.stats = Stats()

    def access(self, block: int, is_write: bool = False) -> int:
        """Perform one access; returns its latency in cycles."""
        self.stats.add("accesses")
        if is_write:
            self.stats.add("writes")
        else:
            self.stats.add("reads")
        return self.latency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MainMemory(latency={self.latency})"
