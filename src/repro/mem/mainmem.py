"""Main-memory model: a fixed-latency backing store with access counting.

The paper's baseline (Table I) charges 191 cycles per main-memory access.
Bandwidth and bank contention are out of scope — the predictors change
*how often* memory is touched, which is what the counters capture.
"""

from __future__ import annotations

from repro.common.stats import Stats


class MainMemory:
    """Fixed-latency DRAM stand-in."""

    def __init__(self, latency: int = 191):
        if latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        self.latency = latency
        self.stats = Stats()
        self._stat = self.stats.counters
        self._stat.update(dict.fromkeys(("accesses", "reads", "writes"), 0))

    def access(self, block: int, is_write: bool = False) -> int:
        """Perform one access; returns its latency in cycles."""
        stat = self._stat
        stat["accesses"] += 1
        stat["writes" if is_write else "reads"] += 1
        return self.latency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MainMemory(latency={self.latency})"
