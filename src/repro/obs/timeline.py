"""Interval time-series sampling of :class:`~repro.common.stats.Stats` bags.

End-of-run aggregates hide exactly the behaviour the paper's predictors
live on: warm-up transients, phase changes, misprediction bursts.
:class:`TimelineSampler` snapshots every registered stats bag once per
``interval`` simulated instructions and stores *deltas* (per-interval
activity, not cumulative totals) in compact columnar lists, so a run's
dynamic behaviour — per-interval LLT/LLC MPKI, bypass rates, shadow-hit
bursts — can be reconstructed without touching simulation semantics.

The sampler is entirely passive: it reads counters through
:meth:`Stats.delta` and never mutates simulator state, which is what
makes enabled-vs-disabled telemetry bit-identical by construction. When
no sampler is attached, :meth:`repro.sim.machine.Machine.run` uses its
original tight loop, so the disabled cost is zero per access.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.common.stats import Stats

#: Default sampling interval, in simulated instructions.
DEFAULT_INTERVAL = 10_000


class TimelineSampler:
    """Columnar per-interval deltas of registered named stats bags.

    Columns are keyed ``"<source>.<counter>"`` (e.g. ``"llt.misses"``)
    and are created lazily on the first interval where a counter moves;
    earlier intervals are zero-backfilled so every column always has one
    value per recorded interval.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        #: Cumulative instruction count at each sample point.
        self.marks: List[int] = []
        #: Instructions retired within each interval.
        self.instructions: List[int] = []
        #: Cycles accumulated within each interval.
        self.cycles: List[float] = []
        #: ``"<source>.<counter>"`` -> per-interval deltas.
        self.columns: Dict[str, List[int]] = {}
        self._sources: List[Tuple[str, Stats]] = []
        self._prev: List[Dict[str, int]] = []
        self._prev_instructions = 0
        self._prev_cycles = 0.0

    # ------------------------------------------------------------------ #
    # Registration and sampling
    # ------------------------------------------------------------------ #
    def register(self, name: str, stats: Stats) -> None:
        """Attach a named stats bag; its counters become columns.

        The current counter values become the baseline of the first
        interval, so registration mid-run is safe (earlier activity is
        simply outside the timeline).
        """
        self._sources.append((name, stats))
        self._prev.append(stats.snapshot())

    def sample(self, instructions: int, cycles: float) -> None:
        """Record one interval ending at ``instructions`` retired."""
        self.marks.append(instructions)
        self.instructions.append(instructions - self._prev_instructions)
        self.cycles.append(cycles - self._prev_cycles)
        self._prev_instructions = instructions
        self._prev_cycles = cycles
        filled = len(self.marks)
        columns = self.columns
        for i, (name, stats) in enumerate(self._sources):
            delta = stats.delta(self._prev[i])
            self._prev[i] = stats.snapshot()
            for counter, d in delta.items():
                if not d:
                    continue
                key = f"{name}.{counter}"
                column = columns.get(key)
                if column is None:
                    column = columns[key] = [0] * (filled - 1)
                column.append(d)
        # Columns untouched this interval still need their zero.
        for column in columns.values():
            if len(column) < filled:
                column.append(0)

    def __len__(self) -> int:
        return len(self.marks)

    # ------------------------------------------------------------------ #
    # Read-side helpers
    # ------------------------------------------------------------------ #
    def column(self, key: str) -> List[int]:
        """A column's per-interval deltas (zeros when it never moved)."""
        return list(self.columns.get(key, [0] * len(self.marks)))

    def series(self, key: str) -> List[float]:
        """Per-interval rate of ``key`` per 1000 instructions (MPKI-style
        when ``key`` is a miss counter)."""
        return [
            1000.0 * d / n if n else 0.0
            for d, n in zip(self.column(key), self.instructions)
        ]

    def ipc_series(self) -> List[float]:
        """Per-interval IPC."""
        return [
            n / c if c else 0.0
            for n, c in zip(self.instructions, self.cycles)
        ]

    def rows(self) -> Iterator[dict]:
        """One dict per interval: mark, deltas, and every column value."""
        keys = sorted(self.columns)
        for i, mark in enumerate(self.marks):
            row = {
                "mark": mark,
                "instructions": self.instructions[i],
                "cycles": self.cycles[i],
            }
            for key in keys:
                row[key] = self.columns[key][i]
            yield row

    # ------------------------------------------------------------------ #
    # Payload round-trip (cross-process transfer, JSON artifacts)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        return {
            "interval": self.interval,
            "marks": list(self.marks),
            "instructions": list(self.instructions),
            "cycles": list(self.cycles),
            "columns": {key: list(col) for key, col in sorted(self.columns.items())},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TimelineSampler":
        sampler = cls(payload["interval"])
        sampler.marks = list(payload["marks"])
        sampler.instructions = list(payload["instructions"])
        sampler.cycles = list(payload["cycles"])
        sampler.columns = {
            key: list(col) for key, col in payload["columns"].items()
        }
        sampler._prev_instructions = (
            sampler.marks[-1] if sampler.marks else 0
        )
        return sampler

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TimelineSampler(interval={self.interval}, "
            f"intervals={len(self.marks)}, columns={len(self.columns)})"
        )
