"""Process-wide trace of *harness* events: retries, timeouts, corruption.

Simulated structures trace their decisions through per-run
:class:`~repro.obs.events.EventTrace` bundles; the execution harness
(the run-matrix supervisor in :mod:`repro.sim.parallel`, the integrity
checks in :mod:`repro.sim.diskcache`) has no per-run bundle to write to
— a retry or a corrupt cache entry belongs to the *sweep*, not to any
one simulation. This module keeps one process-wide
:class:`~repro.obs.events.EventTrace` plus a :class:`~repro.common
.stats.Stats` counter bag for those events, so

* tests can assert that a fault produced exactly the expected
  retry/timeout/corruption events,
* run manifests can embed the resilience counters active at export
  time (see :func:`repro.obs.export.run_manifest`).

``now`` for harness events is a monotone sequence number (wall-clock
stamps would make recovered runs non-reproducible).
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.common.stats import Stats
from repro.obs.events import EventTrace

#: Harness traces are small (one event per failure, not per access).
HARNESS_TRACE_CAPACITY = 4096

_events = EventTrace(HARNESS_TRACE_CAPACITY)
_counters = Stats()
_seq = itertools.count(1)


def record(kind: str, *fields) -> None:
    """Append one harness event and bump its counter."""
    _events.emit(next(_seq), kind, *fields)
    _counters.add(kind)


def harness_events() -> EventTrace:
    """The live process-wide harness event trace."""
    return _events


def harness_counters() -> Stats:
    """The live per-kind counters (retries, timeouts, corruptions...)."""
    return _counters


def counters_snapshot() -> Dict[str, int]:
    """A copy of the harness counters (manifest / assertion form)."""
    return _counters.snapshot()


def reset_harness() -> None:
    """Drop all recorded harness events and counters (test isolation)."""
    global _events, _counters, _seq
    _events = EventTrace(HARNESS_TRACE_CAPACITY)
    _counters = Stats()
    _seq = itertools.count(1)
