"""Named performance baselines and the regression gate over them.

A *baseline* is a JSON file naming a small (workload x config) matrix and
the headline metrics each cell produced (IPC, LLT/LLC MPKI, predictor
accuracy/coverage, plus runner throughput for context). ``record``
creates one; ``check`` re-runs the same matrix and fails with a readable
diff when any metric regresses beyond a relative tolerance.

Each cell is measured over ``reps`` seeds (``seed``, ``seed+1``, ...)
and the gate judges the *percentile-bootstrap 95% confidence interval*
of the relative deviation between the recorded and current rep sets —
the same machinery ``benchmarks/bench_runner_throughput.py`` uses for
its suite-speedup floor. A metric regresses only when the whole interval
sits beyond tolerance in the worse direction, so a single seed-sensitive
cell cannot flake the gate; with one rep the interval collapses to the
old point comparison.

Regression is *direction-aware*: IPC and accuracy/coverage regress
downward, MPKI and walk latency regress upward; movement in the good
direction never fails the gate. Runner throughput is recorded but
informational only — wall time is host-dependent and would make a CI
gate flaky — whereas the simulated metrics are deterministic per seed,
so the gate runs tolerance-tight on them.

The gate must run against *live* simulations: a stale disk-cache entry
would echo the baseline numbers back and mask the very regression the
gate exists to catch. The CLI therefore disables the disk cache before
recording or checking.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema 2 records per-rep metric value lists; schema-1 documents
#: (scalar per-cell values, i.e. one rep) still load and gate.
BASELINE_SCHEMA = 2
_ACCEPTED_SCHEMAS = (1, 2)

#: Gate tolerance: relative deviation allowed in the *worse* direction.
DEFAULT_TOLERANCE = 0.05

#: Seeds measured per cell (``seed``, ``seed+1``, ...). Three reps keep
#: the gate cheap while giving the bootstrap a real spread to resample.
DEFAULT_REPS = 3

#: Percentile-bootstrap parameters — mirrors
#: ``bench_runner_throughput``'s suite-speedup interval; the fixed seed
#: keeps the interval itself reproducible for given measurements.
BOOTSTRAP_RESAMPLES = 2000
BOOTSTRAP_ALPHA = 0.05
BOOTSTRAP_SEED = 0x5EED

#: Metric -> +1 when higher is better, -1 when lower is better. Only
#: these metrics are gated; anything else in a baseline entry is context.
METRIC_DIRECTIONS: Dict[str, int] = {
    "ipc": +1,
    "tlb_accuracy": +1,
    "tlb_coverage": +1,
    "llc_accuracy": +1,
    "llc_coverage": +1,
    "llt_mpki": -1,
    "llc_mpki": -1,
    "avg_walk_latency": -1,
}

#: Recorded and reported, never gated (host-dependent).
INFORMATIONAL_METRICS = ("throughput_kips",)


def config_factories() -> Dict[str, "callable"]:
    """The named configurations a baseline may reference.

    Imported lazily so ``repro.obs`` stays importable without the
    experiments package.
    """
    from repro.experiments import common

    return {
        "baseline": common.baseline,
        "dppred": common.dppred,
        "combined": common.combined,
    }


def _cell_key(workload: str, config_name: str) -> str:
    return f"{workload}/{config_name}"


def measure_matrix(
    workloads: Sequence[str],
    config_names: Sequence[str],
    budget: int,
    seed: int,
    obs_dir: Optional[str] = None,
    reps: int = 1,
) -> Dict[str, Dict[str, List[Optional[float]]]]:
    """Live-simulate the matrix and return per-cell metric-rep dicts.

    Each cell runs ``reps`` times at seeds ``seed .. seed + reps - 1``
    (every metric maps to its per-rep value list, in seed order) with a
    telemetry bundle attached — partly for the wall-time (throughput)
    measurement, partly so ``obs_dir`` can receive the full artifact set
    (manifest, timeline, events) of the first rep of every gate cell.
    """
    from repro.obs.export import export_run
    from repro.obs.telemetry import TelemetrySpec
    from repro.sim.runner import run_cached

    if reps <= 0:
        raise ValueError(f"reps must be positive, got {reps}")
    factories = config_factories()
    unknown = [n for n in config_names if n not in factories]
    if unknown:
        raise ValueError(
            f"unknown config name(s) {unknown}; "
            f"known: {sorted(factories)}"
        )
    spec = TelemetrySpec()
    cells: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for workload in workloads:
        for config_name in config_names:
            config = factories[config_name]()
            per_metric: Dict[str, List[Optional[float]]] = {}
            for rep in range(reps):
                telemetry = spec.build()
                result = run_cached(
                    workload, config, budget, seed + rep,
                    telemetry=telemetry,
                )
                metrics = dict(result.metrics())
                if telemetry.wall_time:
                    metrics["throughput_kips"] = (
                        result.instructions / 1000.0 / telemetry.wall_time
                    )
                for metric, value in metrics.items():
                    per_metric.setdefault(metric, []).append(value)
                if obs_dir is not None and rep == 0:
                    export_run(
                        obs_dir,
                        workload=workload,
                        config=config,
                        budget=budget,
                        seed=seed,
                        result=result,
                        telemetry=telemetry,
                    )
            cells[_cell_key(workload, config_name)] = per_metric
    return cells


def record_baseline(
    name: str,
    workloads: Sequence[str],
    config_names: Sequence[str],
    budget: int,
    seed: int,
    obs_dir: Optional[str] = None,
    reps: int = DEFAULT_REPS,
) -> dict:
    """Measure the matrix and wrap it in a named baseline document."""
    return {
        "schema": BASELINE_SCHEMA,
        "name": name,
        "workloads": list(workloads),
        "configs": list(config_names),
        "budget": budget,
        "seed": seed,
        "reps": reps,
        "created_unix": time.time(),
        "runs": measure_matrix(
            workloads, config_names, budget, seed, obs_dir, reps=reps
        ),
    }


def load_baseline(path) -> dict:
    baseline = json.loads(Path(path).read_text())
    schema = baseline.get("schema")
    if schema not in _ACCEPTED_SCHEMAS:
        raise ValueError(
            f"baseline {path} has schema {schema!r}, "
            f"expected one of {_ACCEPTED_SCHEMAS}"
        )
    return baseline


def save_baseline(baseline: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _as_reps(value) -> Optional[List[float]]:
    """Normalise a recorded metric to its rep list.

    Schema-2 documents store per-rep lists; schema-1 documents (and the
    unit-test shorthand) store scalars — a one-element rep list. ``None``
    reps (a predictor-less config has no accuracy) are dropped; a metric
    with no non-None rep reads as absent.
    """
    if value is None:
        return None
    if isinstance(value, (list, tuple)):
        reps = [v for v in value if v is not None]
        return reps if reps else None
    return [value]


def _relative_dev(recorded: float, current: float) -> float:
    """Signed relative change of ``current`` vs ``recorded``."""
    if recorded == 0:
        if current == 0:
            return 0.0
        return float("inf") if current > 0 else float("-inf")
    return (current - recorded) / abs(recorded)


def bootstrap_deviation_ci(
    recorded: Sequence[float],
    current: Sequence[float],
    n_boot: int = BOOTSTRAP_RESAMPLES,
    alpha: float = BOOTSTRAP_ALPHA,
    seed: int = BOOTSTRAP_SEED,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the relative deviation of medians.

    Reps are seed-matched between recording and check, so equal-length
    sides resample *paired* (one index draw reused for both medians) —
    the per-seed structure survives resampling and a uniform shift
    yields a degenerate, exactly-located interval. Unequal lengths
    (e.g. a schema-1 baseline checked with more reps) fall back to
    independent resampling. One rep per side short-circuits to the
    point deviation — the pre-bootstrap gate behaviour.
    """
    n_rec, n_cur = len(recorded), len(current)
    if n_rec == 1 and n_cur == 1:
        dev = _relative_dev(recorded[0], current[0])
        return dev, dev
    rng = random.Random(seed)
    draws = []
    if n_rec == n_cur:
        for _ in range(n_boot):
            idx = [rng.randrange(n_rec) for _ in range(n_rec)]
            draws.append(_relative_dev(
                _median([recorded[i] for i in idx]),
                _median([current[i] for i in idx]),
            ))
    else:
        for _ in range(n_boot):
            draws.append(_relative_dev(
                _median([
                    recorded[rng.randrange(n_rec)] for _ in range(n_rec)
                ]),
                _median([
                    current[rng.randrange(n_cur)] for _ in range(n_cur)
                ]),
            ))
    draws.sort()
    low = draws[int((alpha / 2) * (n_boot - 1))]
    high = draws[int((1 - alpha / 2) * (n_boot - 1))]
    return low, high


class MetricDiff:
    """One (cell, metric) comparison between baseline and current run.

    ``recorded``/``current`` hold the rep medians; ``ci_low``/``ci_high``
    the bootstrap interval of the relative deviation (None for missing
    or informational rows).
    """

    __slots__ = (
        "cell", "metric", "recorded", "current", "status",
        "ci_low", "ci_high",
    )

    def __init__(
        self, cell, metric, recorded, current, status,
        ci_low=None, ci_high=None,
    ):
        self.cell = cell
        self.metric = metric
        self.recorded = recorded
        self.current = current
        self.status = status  # "ok" | "REGRESSION" | "info" | "missing"
        self.ci_low = ci_low
        self.ci_high = ci_high

    @property
    def deviation(self) -> Optional[float]:
        """Signed relative change vs the recorded median, or None."""
        if self.recorded is None or self.current is None:
            return None
        return _relative_dev(self.recorded, self.current)


def diff_metrics(
    recorded: Dict[str, object],
    current: Dict[str, object],
    cell: str,
    tolerance: float,
) -> List[MetricDiff]:
    """Compare one cell's metric dicts, direction-aware.

    A gated metric regresses only when its whole bootstrap 95% interval
    sits beyond ``tolerance`` in the worse direction — for higher-better
    metrics the interval's *upper* bound must fall below ``-tolerance``,
    for lower-better its *lower* bound must exceed ``+tolerance``.
    Movement in the good direction, or an interval straddling tolerance
    (one noisy seed), never fails the gate.
    """
    diffs: List[MetricDiff] = []
    for metric, direction in METRIC_DIRECTIONS.items():
        old = _as_reps(recorded.get(metric))
        new = _as_reps(current.get(metric))
        if old is None and new is None:
            continue
        if old is None or new is None:
            diffs.append(MetricDiff(
                cell, metric,
                None if old is None else _median(old),
                None if new is None else _median(new),
                "missing",
            ))
            continue
        ci_low, ci_high = bootstrap_deviation_ci(old, new)
        diff = MetricDiff(
            cell, metric, _median(old), _median(new), "ok",
            ci_low, ci_high,
        )
        if direction > 0:
            regressed = ci_high < -tolerance
        else:
            regressed = ci_low > tolerance
        if regressed:
            diff.status = "REGRESSION"
        diffs.append(diff)
    for metric in INFORMATIONAL_METRICS:
        old = _as_reps(recorded.get(metric))
        new = _as_reps(current.get(metric))
        if old is not None or new is not None:
            diffs.append(
                MetricDiff(
                    cell, metric,
                    None if old is None else _median(old),
                    None if new is None else _median(new),
                    "info",
                )
            )
    return diffs


def check_baseline(
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    obs_dir: Optional[str] = None,
) -> Tuple[bool, List[MetricDiff]]:
    """Re-run the baseline's matrix and diff every gated metric.

    Returns ``(passed, diffs)``; ``passed`` is False when any diff is a
    REGRESSION. Cells present in the baseline and absent from the rerun
    (or vice versa) also fail, as "missing" — a silently shrunk matrix
    must not read as green.
    """
    current = measure_matrix(
        baseline["workloads"],
        baseline["configs"],
        baseline["budget"],
        baseline["seed"],
        obs_dir,
        reps=baseline.get("reps", 1),
    )
    diffs: List[MetricDiff] = []
    recorded_runs = baseline["runs"]
    for cell in sorted(set(recorded_runs) | set(current)):
        if cell not in recorded_runs or cell not in current:
            diffs.append(MetricDiff(cell, "*", None, None, "missing"))
            continue
        diffs.extend(
            diff_metrics(recorded_runs[cell], current[cell], cell, tolerance)
        )
    passed = not any(d.status in ("REGRESSION", "missing") for d in diffs)
    return passed, diffs


def render_diffs(
    diffs: Sequence[MetricDiff], tolerance: float, verbose: bool = False
) -> str:
    """Readable gate report. Regressions always shown; ``verbose`` adds
    the full metric-by-metric table."""
    from repro.experiments.report import render_table

    shown = [
        d for d in diffs
        if verbose or d.status in ("REGRESSION", "missing", "info")
    ]
    rows = []
    for d in shown:
        dev = d.deviation
        if d.ci_low is None or d.ci_high is None:
            ci = "-"
        else:
            ci = f"[{100.0 * d.ci_low:+.1f}%, {100.0 * d.ci_high:+.1f}%]"
        rows.append([
            d.cell,
            d.metric,
            "-" if d.recorded is None else f"{d.recorded:.4f}",
            "-" if d.current is None else f"{d.current:.4f}",
            "-" if dev is None else f"{100.0 * dev:+.1f}%",
            ci,
            d.status,
        ])
    regressions = sum(1 for d in diffs if d.status == "REGRESSION")
    missing = sum(1 for d in diffs if d.status == "missing")
    gated = sum(1 for d in diffs if d.status in ("ok", "REGRESSION"))
    lines = []
    if rows:
        lines.append(render_table(
            ["run", "metric", "baseline", "current", "delta",
             "95% CI", "status"],
            rows,
        ))
    verdict = "PASS" if not regressions and not missing else "FAIL"
    lines.append(
        f"{verdict}: {gated} gated comparisons, {regressions} regression(s),"
        f" {missing} missing, bootstrap 95% CI vs tolerance "
        f"{100.0 * tolerance:.1f}%"
    )
    return "\n".join(lines)
