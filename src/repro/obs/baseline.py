"""Named performance baselines and the regression gate over them.

A *baseline* is a JSON file naming a small (workload x config) matrix and
the headline metrics each cell produced (IPC, LLT/LLC MPKI, predictor
accuracy/coverage, plus runner throughput for context). ``record``
creates one; ``check`` re-runs the same matrix and fails with a readable
diff when any metric regresses beyond a relative tolerance.

Regression is *direction-aware*: IPC and accuracy/coverage regress
downward, MPKI and walk latency regress upward; movement in the good
direction never fails the gate. Runner throughput is recorded but
informational only — wall time is host-dependent and would make a CI
gate flaky — whereas the simulated metrics are deterministic, so the
gate runs tolerance-tight on them.

The gate must run against *live* simulations: a stale disk-cache entry
would echo the baseline numbers back and mask the very regression the
gate exists to catch. The CLI therefore disables the disk cache before
recording or checking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

BASELINE_SCHEMA = 1

#: Gate tolerance: relative deviation allowed in the *worse* direction.
DEFAULT_TOLERANCE = 0.05

#: Metric -> +1 when higher is better, -1 when lower is better. Only
#: these metrics are gated; anything else in a baseline entry is context.
METRIC_DIRECTIONS: Dict[str, int] = {
    "ipc": +1,
    "tlb_accuracy": +1,
    "tlb_coverage": +1,
    "llc_accuracy": +1,
    "llc_coverage": +1,
    "llt_mpki": -1,
    "llc_mpki": -1,
    "avg_walk_latency": -1,
}

#: Recorded and reported, never gated (host-dependent).
INFORMATIONAL_METRICS = ("throughput_kips",)


def config_factories() -> Dict[str, "callable"]:
    """The named configurations a baseline may reference.

    Imported lazily so ``repro.obs`` stays importable without the
    experiments package.
    """
    from repro.experiments import common

    return {
        "baseline": common.baseline,
        "dppred": common.dppred,
        "combined": common.combined,
    }


def _cell_key(workload: str, config_name: str) -> str:
    return f"{workload}/{config_name}"


def measure_matrix(
    workloads: Sequence[str],
    config_names: Sequence[str],
    budget: int,
    seed: int,
    obs_dir: Optional[str] = None,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Live-simulate the matrix and return per-cell metric dicts.

    Each cell runs with a telemetry bundle attached — partly for the
    wall-time (throughput) measurement, partly so ``obs_dir`` can receive
    the full artifact set (manifest, timeline, events) of every gate run.
    """
    from repro.obs.export import export_run
    from repro.obs.telemetry import TelemetrySpec
    from repro.sim.runner import run_cached

    factories = config_factories()
    unknown = [n for n in config_names if n not in factories]
    if unknown:
        raise ValueError(
            f"unknown config name(s) {unknown}; "
            f"known: {sorted(factories)}"
        )
    spec = TelemetrySpec()
    cells: Dict[str, Dict[str, Optional[float]]] = {}
    for workload in workloads:
        for config_name in config_names:
            config = factories[config_name]()
            telemetry = spec.build()
            result = run_cached(
                workload, config, budget, seed, telemetry=telemetry
            )
            metrics = dict(result.metrics())
            if telemetry.wall_time:
                metrics["throughput_kips"] = (
                    result.instructions / 1000.0 / telemetry.wall_time
                )
            cells[_cell_key(workload, config_name)] = metrics
            if obs_dir is not None:
                export_run(
                    obs_dir,
                    workload=workload,
                    config=config,
                    budget=budget,
                    seed=seed,
                    result=result,
                    telemetry=telemetry,
                )
    return cells


def record_baseline(
    name: str,
    workloads: Sequence[str],
    config_names: Sequence[str],
    budget: int,
    seed: int,
    obs_dir: Optional[str] = None,
) -> dict:
    """Measure the matrix and wrap it in a named baseline document."""
    return {
        "schema": BASELINE_SCHEMA,
        "name": name,
        "workloads": list(workloads),
        "configs": list(config_names),
        "budget": budget,
        "seed": seed,
        "created_unix": time.time(),
        "runs": measure_matrix(
            workloads, config_names, budget, seed, obs_dir
        ),
    }


def load_baseline(path) -> dict:
    baseline = json.loads(Path(path).read_text())
    schema = baseline.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {schema!r}, "
            f"expected {BASELINE_SCHEMA}"
        )
    return baseline


def save_baseline(baseline: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


class MetricDiff:
    """One (cell, metric) comparison between baseline and current run."""

    __slots__ = ("cell", "metric", "recorded", "current", "status")

    def __init__(self, cell, metric, recorded, current, status):
        self.cell = cell
        self.metric = metric
        self.recorded = recorded
        self.current = current
        self.status = status  # "ok" | "REGRESSION" | "info" | "missing"

    @property
    def deviation(self) -> Optional[float]:
        """Signed relative change vs the recorded value, or None."""
        if self.recorded is None or self.current is None:
            return None
        if self.recorded == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.recorded) / abs(self.recorded)


def diff_metrics(
    recorded: Dict[str, Optional[float]],
    current: Dict[str, Optional[float]],
    cell: str,
    tolerance: float,
) -> List[MetricDiff]:
    """Compare one cell's metric dicts, direction-aware."""
    diffs: List[MetricDiff] = []
    for metric, direction in METRIC_DIRECTIONS.items():
        old = recorded.get(metric)
        new = current.get(metric)
        if old is None and new is None:
            continue
        if old is None or new is None:
            diffs.append(MetricDiff(cell, metric, old, new, "missing"))
            continue
        diff = MetricDiff(cell, metric, old, new, "ok")
        dev = diff.deviation
        worse = (new - old) * direction < 0
        if worse and abs(dev) > tolerance:
            diff.status = "REGRESSION"
        diffs.append(diff)
    for metric in INFORMATIONAL_METRICS:
        if recorded.get(metric) is not None or current.get(metric) is not None:
            diffs.append(
                MetricDiff(
                    cell, metric,
                    recorded.get(metric), current.get(metric), "info",
                )
            )
    return diffs


def check_baseline(
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    obs_dir: Optional[str] = None,
) -> Tuple[bool, List[MetricDiff]]:
    """Re-run the baseline's matrix and diff every gated metric.

    Returns ``(passed, diffs)``; ``passed`` is False when any diff is a
    REGRESSION. Cells present in the baseline and absent from the rerun
    (or vice versa) also fail, as "missing" — a silently shrunk matrix
    must not read as green.
    """
    current = measure_matrix(
        baseline["workloads"],
        baseline["configs"],
        baseline["budget"],
        baseline["seed"],
        obs_dir,
    )
    diffs: List[MetricDiff] = []
    recorded_runs = baseline["runs"]
    for cell in sorted(set(recorded_runs) | set(current)):
        if cell not in recorded_runs or cell not in current:
            diffs.append(MetricDiff(cell, "*", None, None, "missing"))
            continue
        diffs.extend(
            diff_metrics(recorded_runs[cell], current[cell], cell, tolerance)
        )
    passed = not any(d.status in ("REGRESSION", "missing") for d in diffs)
    return passed, diffs


def render_diffs(
    diffs: Sequence[MetricDiff], tolerance: float, verbose: bool = False
) -> str:
    """Readable gate report. Regressions always shown; ``verbose`` adds
    the full metric-by-metric table."""
    from repro.experiments.report import render_table

    shown = [
        d for d in diffs
        if verbose or d.status in ("REGRESSION", "missing", "info")
    ]
    rows = []
    for d in shown:
        dev = d.deviation
        rows.append([
            d.cell,
            d.metric,
            "-" if d.recorded is None else f"{d.recorded:.4f}",
            "-" if d.current is None else f"{d.current:.4f}",
            "-" if dev is None else f"{100.0 * dev:+.1f}%",
            d.status,
        ])
    regressions = sum(1 for d in diffs if d.status == "REGRESSION")
    missing = sum(1 for d in diffs if d.status == "missing")
    gated = sum(1 for d in diffs if d.status in ("ok", "REGRESSION"))
    lines = []
    if rows:
        lines.append(render_table(
            ["run", "metric", "baseline", "current", "delta", "status"],
            rows,
        ))
    verdict = "PASS" if not regressions and not missing else "FAIL"
    lines.append(
        f"{verdict}: {gated} gated comparisons, {regressions} regression(s),"
        f" {missing} missing, tolerance {100.0 * tolerance:.1f}%"
    )
    return "\n".join(lines)
