"""Telemetry bundles: what a single simulation run may observe.

A :class:`TelemetrySpec` is the *description* — picklable, hashable,
safe to ship to pool workers — and a :class:`Telemetry` is one run's
live instruments built from it (a timeline sampler and/or an event
trace). Machines accept a ``Telemetry`` and wire its probe into their
predictors; runners fill in wall time and hand the bundle to exporters.

The module also keeps the *process-wide auto default* behind the
experiment CLI's ``--obs`` flag: when enabled, every simulation that
actually executes (cache misses — cached results carry no dynamics)
builds a fresh bundle from the default spec and exports its artifacts
into the sink directory. Pool workers inherit the setting through
:func:`auto_state` / :func:`set_auto_state`, mirroring how the disk
cache is propagated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.events import EventTrace
from repro.obs.timeline import DEFAULT_INTERVAL, TimelineSampler


@dataclass(frozen=True)
class TelemetrySpec:
    """Declarative description of one run's telemetry instruments."""

    interval: int = DEFAULT_INTERVAL
    timeline: bool = True
    events: bool = True
    event_capacity: int = 65536

    def validate(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.event_capacity <= 0:
            raise ValueError(
                f"event_capacity must be positive, got {self.event_capacity}"
            )
        if not (self.timeline or self.events):
            raise ValueError("spec enables neither timeline nor events")

    def build(self) -> "Telemetry":
        return Telemetry(self)


class Telemetry:
    """One run's live instruments plus run-level bookkeeping."""

    def __init__(self, spec: TelemetrySpec = TelemetrySpec()):
        spec.validate()
        self.spec = spec
        self.timeline: Optional[TimelineSampler] = (
            TimelineSampler(spec.interval) if spec.timeline else None
        )
        self.events: Optional[EventTrace] = (
            EventTrace(spec.event_capacity) if spec.events else None
        )
        #: Wall-clock seconds of the simulate call (filled by the runner).
        self.wall_time: Optional[float] = None

    @property
    def probe(self) -> Optional[EventTrace]:
        """The nullable probe structures should hold (None = no tracing)."""
        return self.events

    def to_payload(self) -> dict:
        """JSON-safe dict for cross-process transfer and artifacts."""
        return {
            "spec": {
                "interval": self.spec.interval,
                "timeline": self.spec.timeline,
                "events": self.spec.events,
                "event_capacity": self.spec.event_capacity,
            },
            "wall_time": self.wall_time,
            "timeline": (
                self.timeline.to_payload() if self.timeline else None
            ),
            "events": self.events.to_payload() if self.events else None,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Telemetry":
        spec = TelemetrySpec(**payload["spec"])
        telemetry = cls(spec)
        telemetry.wall_time = payload.get("wall_time")
        if payload.get("timeline") is not None and spec.timeline:
            telemetry.timeline = TimelineSampler.from_payload(
                payload["timeline"]
            )
        if payload.get("events") is not None and spec.events:
            telemetry.events = EventTrace.from_payload(payload["events"])
        return telemetry


# --------------------------------------------------------------------- #
# Process-wide auto default (the experiments CLI's --obs flag)
# --------------------------------------------------------------------- #
_auto_spec: Optional[TelemetrySpec] = None
_auto_sink: Optional[str] = None


def enable_auto(
    sink: Optional[str] = None, spec: Optional[TelemetrySpec] = None
) -> TelemetrySpec:
    """Observe every subsequently *simulated* run with ``spec``.

    ``sink`` names a directory that receives each run's exported
    artifacts (manifest, timeline CSV/JSONL, events JSONL); ``None``
    collects telemetry without exporting. Runs satisfied from a cache do
    not re-simulate and therefore produce no telemetry — disable the
    disk cache to observe a full experiment.
    """
    global _auto_spec, _auto_sink
    spec = spec or TelemetrySpec()
    spec.validate()
    _auto_spec = spec
    _auto_sink = str(sink) if sink is not None else None
    return spec


def disable_auto() -> None:
    global _auto_spec, _auto_sink
    _auto_spec = None
    _auto_sink = None


def auto_state() -> Optional[Tuple[TelemetrySpec, Optional[str]]]:
    """The (spec, sink) pair to propagate into pool workers, or None."""
    if _auto_spec is None:
        return None
    return (_auto_spec, _auto_sink)


def set_auto_state(
    state: Optional[Tuple[TelemetrySpec, Optional[str]]]
) -> None:
    """Worker-side mirror of :func:`auto_state` (see sim.parallel)."""
    if state is None:
        disable_auto()
    else:
        enable_auto(state[1], state[0])


def build_auto() -> Tuple[Optional["Telemetry"], Optional[str]]:
    """A fresh (telemetry, sink) for one run, or ``(None, None)``."""
    if _auto_spec is None:
        return None, None
    return _auto_spec.build(), _auto_sink
