"""CLI: ``python -m repro.obs`` — record, check, and inspect baselines.

Examples::

    # Record a named baseline (small matrix, fixed seed):
    python -m repro.obs record --out benchmarks/baselines/ci_smoke.json \
        --name ci_smoke --workloads mcf,bfs --configs baseline,combined \
        --budget 4000

    # Gate the working tree against it (non-zero exit on regression):
    python -m repro.obs check --baseline benchmarks/baselines/ci_smoke.json

    # Same, exporting every gate run's telemetry artifacts:
    python -m repro.obs check --baseline ... --obs obs-telemetry

    # Inspect a baseline file:
    python -m repro.obs show --baseline benchmarks/baselines/ci_smoke.json

Both ``record`` and ``check`` disable the persistent disk cache for the
duration of the run: the gate exists to catch behavioural changes in the
simulator, and a stale cached result would echo the recorded numbers
back and mask exactly those changes.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.baseline import (
    DEFAULT_REPS,
    DEFAULT_TOLERANCE,
    check_baseline,
    config_factories,
    load_baseline,
    record_baseline,
    render_diffs,
    save_baseline,
)

DEFAULT_WORKLOADS = "mcf,bfs"
DEFAULT_CONFIGS = "baseline,combined"
DEFAULT_BUDGET = 4000
DEFAULT_SEED = 42


def _csv(value: str):
    return [item for item in (s.strip() for s in value.split(",")) if item]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Record and check performance baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser(
        "record", help="simulate a matrix and write a baseline file"
    )
    rec.add_argument("--out", required=True, help="baseline JSON to write")
    rec.add_argument("--name", default="baseline", help="baseline name")
    rec.add_argument(
        "--workloads",
        default=DEFAULT_WORKLOADS,
        help=f"comma-separated workloads (default {DEFAULT_WORKLOADS})",
    )
    rec.add_argument(
        "--configs",
        default=DEFAULT_CONFIGS,
        help="comma-separated config names "
        f"({','.join(sorted(config_factories()))}; "
        f"default {DEFAULT_CONFIGS})",
    )
    rec.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    rec.add_argument("--seed", type=int, default=DEFAULT_SEED)
    rec.add_argument(
        "--reps",
        type=int,
        default=DEFAULT_REPS,
        help="seeds measured per cell (seed, seed+1, ...); the check "
        "gate judges the bootstrap 95%% CI over the same rep count "
        f"(default {DEFAULT_REPS})",
    )
    rec.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="also export each run's telemetry artifacts into DIR",
    )

    chk = sub.add_parser(
        "check",
        help="re-run a baseline's matrix; exit 1 on regression",
    )
    chk.add_argument(
        "--baseline", required=True, help="baseline JSON to check against"
    )
    chk.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative worse-direction tolerance "
        f"(default {DEFAULT_TOLERANCE})",
    )
    chk.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="export each gate run's telemetry artifacts into DIR",
    )
    chk.add_argument(
        "--verbose",
        action="store_true",
        help="show every comparison, not just regressions",
    )

    show = sub.add_parser("show", help="print a baseline file as a table")
    show.add_argument("--baseline", required=True)

    args = parser.parse_args(argv)

    if args.command == "show":
        return _show(args)

    # Gate runs must simulate live — see the module docstring.
    import repro.sim.diskcache as diskcache

    diskcache.disable()

    if args.command == "record":
        baseline = record_baseline(
            args.name,
            _csv(args.workloads),
            _csv(args.configs),
            args.budget,
            args.seed,
            obs_dir=args.obs,
            reps=args.reps,
        )
        path = save_baseline(baseline, args.out)
        print(
            f"recorded baseline '{args.name}' "
            f"({len(baseline['runs'])} cells x {args.reps} reps) -> {path}"
        )
        return 0

    baseline = load_baseline(args.baseline)
    passed, diffs = check_baseline(
        baseline, tolerance=args.tolerance, obs_dir=args.obs
    )
    print(
        f"checking against baseline '{baseline.get('name', '?')}' "
        f"({args.baseline})"
    )
    print(render_diffs(diffs, args.tolerance, verbose=args.verbose))
    return 0 if passed else 1


def _show(args) -> int:
    from repro.experiments.report import render_table
    from repro.obs.baseline import _as_reps, _median

    baseline = load_baseline(args.baseline)
    metric_names = sorted(
        {m for cell in baseline["runs"].values() for m in cell}
    )

    def fmt(value):
        reps = _as_reps(value)
        return "-" if reps is None else f"{_median(reps):.4f}"

    rows = [
        [cell] + [fmt(metrics.get(m)) for m in metric_names]
        for cell, metrics in sorted(baseline["runs"].items())
    ]
    print(
        f"baseline '{baseline.get('name', '?')}' "
        f"budget={baseline['budget']} seed={baseline['seed']} "
        f"reps={baseline.get('reps', 1)} (rep medians shown)"
    )
    print(render_table(["run"] + metric_names, rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
