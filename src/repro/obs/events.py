"""Bounded ring-buffer tracing of structured predictor decisions.

The paper's mechanisms are sequences of *decisions* — an LLT fill is
bypassed, a shadow-table entry is promoted back (misprediction, column
flush), a PFN is pushed into the LLC's PFQ, a block on a DOA page is
bypassed — and end-of-run aggregates cannot show how those decisions
cluster in time. :class:`EventTrace` records each decision as a compact
tuple ``(now, kind, *fields)`` in a bounded ring buffer (oldest events
drop first), cheap enough to leave on for whole runs.

Emission is via a *nullable probe*: structures hold ``probe = None`` by
default and guard every emission with ``if self.probe is not None`` —
one attribute load and identity test on decision paths (fills, misses,
evictions), and nothing at all on the per-access hot path. An
:class:`EventTrace` instance *is* the probe; there is no intermediate
dispatch object.

Event kinds and their payload field names are registered in
:data:`EVENT_FIELDS` so exporters can render self-describing JSONL.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Tuple

# --------------------------------------------------------------------- #
# Event kinds (string constants keep the JSONL self-describing)
# --------------------------------------------------------------------- #
#: dpPred predicted DOA at LLT fill time; the translation bypassed the LLT.
EV_LLT_BYPASS = "llt_bypass"
#: dpPred predicted DOA but the config demotes instead of bypassing.
EV_LLT_DEMOTE = "llt_demote"
#: A bypassed translation was promoted into the shadow table.
EV_SHADOW_PROMOTE = "shadow_promote"
#: Shadow-table hit: detected misprediction; pHIST column flushed.
EV_SHADOW_HIT = "shadow_hit"
#: A shadow entry aged out unreferenced (the bypass went unpunished).
EV_SHADOW_EVICT = "shadow_evict"
#: dpPred forwarded a predicted-DOA PFN to the LLC (PFQ push).
EV_PFQ_PUSH = "pfq_push"
#: An LLC fill matched a PFQ entry (block lands on a predicted-DOA page).
EV_PFQ_HIT = "pfq_hit"
#: cbPred predicted DOA; the block bypassed the LLC.
EV_LLC_BYPASS = "llc_bypass"
#: cbPred allocated the block with its DP bit set (low confidence).
EV_LLC_MARK_DP = "llc_mark_dp"
#: Fill-time prediction resolved against eviction-time ground truth (LLT).
EV_LLT_VERDICT = "llt_verdict"
#: Fill-time prediction resolved against eviction-time ground truth (LLC).
EV_LLC_VERDICT = "llc_verdict"
#: A page walk completed (machine-level; rare enough to record each one).
EV_WALK = "walk"
#: The tenant scheduler switched address spaces (multi-tenant traces).
EV_CTX_SWITCH = "ctx_switch"
#: A TLB shootdown fired (scope: "page" / "asid" / "all").
EV_SHOOTDOWN = "shootdown"

# --------------------------------------------------------------------- #
# Harness (run-matrix resilience) event kinds — emitted by the executor
# and the disk cache into the process-wide trace in :mod:`repro.obs
# .harness`, not by simulated structures. ``now`` for these is a
# monotone sequence number, not a simulation timestamp.
# --------------------------------------------------------------------- #
#: A matrix cell failed and is being retried.
EV_RUN_RETRY = "run_retry"
#: A matrix cell exceeded its per-run wall-clock timeout.
EV_RUN_TIMEOUT = "run_timeout"
#: The worker pool died (a worker was killed) and was rebuilt.
EV_POOL_REBUILD = "pool_rebuild"
#: A ``.repro_cache/`` entry failed its integrity check and was quarantined.
EV_CACHE_CORRUPT = "cache_corrupt"
#: A cell was skipped because the resume journal already holds its result.
EV_RESUME_SKIP = "resume_skip"
#: A :class:`~repro.sim.faults.FaultPlan` fault fired (test harness only).
EV_FAULT_INJECT = "fault_inject"
#: A duplicate in-flight computation was coalesced onto its leader
#: (matrix executor side of :mod:`repro.sim.inflight`).
EV_INFLIGHT_COALESCE = "inflight_coalesce"

# --------------------------------------------------------------------- #
# Serve (``repro.serve``) request-lifecycle event kinds — one event per
# request milestone, recorded into the process-wide harness trace so
# ``GET /status`` and the serve tests can audit exactly how each request
# was satisfied. ``now`` is the harness sequence number.
# --------------------------------------------------------------------- #
#: An HTTP request was accepted (any endpoint).
EV_SERVE_REQUEST = "serve_request"
#: A ``POST /run`` was answered straight from the result cache.
EV_SERVE_HIT = "serve_hit"
#: A ``POST /run`` missed and this request led the computation.
EV_SERVE_COMPUTE = "serve_compute"
#: A ``POST /run`` duplicated an in-flight computation and waited on it.
EV_SERVE_COALESCE = "serve_coalesce"
#: A timeline was streamed to a client as NDJSON chunks.
EV_SERVE_STREAM = "serve_stream"
#: Graceful shutdown began draining this many in-flight requests.
EV_SERVE_DRAIN = "serve_drain"

#: Payload field names per kind, in tuple order after ``(now, kind)``.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    EV_LLT_BYPASS: ("vpn", "pfn"),
    EV_LLT_DEMOTE: ("vpn", "pfn"),
    EV_SHADOW_PROMOTE: ("vpn", "pfn"),
    EV_SHADOW_HIT: ("vpn", "pfn"),
    EV_SHADOW_EVICT: ("vpn",),
    EV_PFQ_PUSH: ("pfn",),
    EV_PFQ_HIT: ("block",),
    EV_LLC_BYPASS: ("block",),
    EV_LLC_MARK_DP: ("block",),
    EV_LLT_VERDICT: ("vpn", "predicted_doa", "actual_doa"),
    EV_LLC_VERDICT: ("block", "predicted_doa", "actual_doa"),
    EV_WALK: ("vpn", "latency"),
    EV_CTX_SWITCH: ("from_asid", "to_asid"),
    EV_SHOOTDOWN: ("asid", "scope"),
    EV_RUN_RETRY: ("workload", "config", "seed", "attempt", "reason"),
    EV_RUN_TIMEOUT: ("workload", "config", "seed", "attempt", "timeout_s"),
    EV_POOL_REBUILD: ("pending",),
    # Field names must not shadow the row-level "now"/"kind" keys.
    EV_CACHE_CORRUPT: ("store", "path", "reason"),
    EV_RESUME_SKIP: ("workload", "config", "seed"),
    EV_FAULT_INJECT: ("workload", "fault", "attempt"),
    EV_INFLIGHT_COALESCE: ("key",),
    EV_SERVE_REQUEST: ("method", "path"),
    EV_SERVE_HIT: ("key",),
    EV_SERVE_COMPUTE: ("key",),
    EV_SERVE_COALESCE: ("key",),
    EV_SERVE_STREAM: ("key", "rows"),
    EV_SERVE_DRAIN: ("pending",),
}


class EventTrace:
    """Bounded ring buffer of ``(now, kind, *fields)`` decision events.

    Structures treat an instance as their probe: ``probe.emit(now, kind,
    a, b)``. When the buffer is full the oldest events are dropped;
    :attr:`emitted` keeps the lifetime count so :meth:`dropped` reports
    how much history the window lost.
    """

    __slots__ = ("capacity", "emitted", "_buf")

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self._buf: deque = deque(maxlen=capacity)

    def emit(self, now: int, kind: str, *fields) -> None:
        self.emitted += 1
        self._buf.append((now, kind) + fields)

    def __len__(self) -> int:
        return len(self._buf)

    def dropped(self) -> int:
        """Events lost to the ring bound (0 while under capacity)."""
        return self.emitted - len(self._buf)

    def events(self) -> List[tuple]:
        """The retained events, oldest first."""
        return list(self._buf)

    def counts(self) -> Dict[str, int]:
        """Retained events per kind (quick-look summary)."""
        out: Dict[str, int] = {}
        for event in self._buf:
            kind = event[1]
            out[kind] = out.get(kind, 0) + 1
        return out

    def rows(self) -> Iterator[dict]:
        """Self-describing dict per retained event (JSONL export form)."""
        for event in self._buf:
            now, kind = event[0], event[1]
            row = {"now": now, "kind": kind}
            names = EVENT_FIELDS.get(kind)
            if names is None:
                for i, value in enumerate(event[2:]):
                    row[f"f{i}"] = value
            else:
                row.update(zip(names, event[2:]))
            yield row

    # ------------------------------------------------------------------ #
    # Payload round-trip (cross-process transfer, JSON artifacts)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        return {
            "capacity": self.capacity,
            "emitted": self.emitted,
            "events": [list(event) for event in self._buf],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EventTrace":
        trace = cls(payload["capacity"])
        trace.emitted = payload["emitted"]
        trace._buf.extend(tuple(event) for event in payload["events"])
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventTrace({len(self._buf)}/{self.capacity} retained, "
            f"{self.emitted} emitted)"
        )
