"""Telemetry exporters: JSONL/CSV artifacts plus run manifests.

Every observed run exports a small, self-describing artifact set next to
the ``.repro_cache/`` results it corresponds to:

* ``<stem>.manifest.json`` — the run manifest: config name + content
  hash, seed, budget, cache schema version, wall time, peak RSS, and the
  headline metrics (:meth:`SimResult.metrics`);
* ``<stem>.timeline.csv`` / ``<stem>.timeline.jsonl`` — one row per
  sampling interval (instruction mark, per-interval deltas of every
  counter column, derived per-interval IPC and LLT/LLC MPKI);
* ``<stem>.events.jsonl`` — one decision event per line.

Stems are content-derived (``<workload>-<config digest>-b<budget>-
s<seed>``), so concurrent pool workers write disjoint files and a
directory of artifacts merges deterministically regardless of worker
scheduling. Writes go through temp-file + rename, mirroring
:mod:`repro.sim.diskcache`.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Iterable, Optional

from repro.obs.telemetry import Telemetry

try:  # Unix; absent on some platforms, in which case peak RSS is None.
    import resource
except ImportError:  # pragma: no cover - platform-dependent
    resource = None


def config_digest(config) -> str:
    """Content hash of a frozen :class:`SystemConfig` (its repr covers
    every field, nested dataclasses included)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or None when unavailable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:  # pragma: no cover - platform-dependent
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-dependent
        return peak
    return peak * 1024


def _write_atomic(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_jsonl(path, rows: Iterable[dict]) -> Path:
    """Write dict rows as JSON Lines (sorted keys: byte-stable output)."""
    path = Path(path)
    lines = [json.dumps(row, sort_keys=True) for row in rows]
    _write_atomic(path, ("\n".join(lines) + "\n").encode())
    return path


def ndjson_line(row: dict) -> bytes:
    """One NDJSON line (sorted keys: byte-stable streams).

    The serve subsystem streams timelines to clients chunk-by-chunk in
    exactly this encoding, so a streamed timeline concatenates to the
    same bytes :func:`write_jsonl` would have written.
    """
    return (json.dumps(row, sort_keys=True) + "\n").encode()


def stream_timeline_rows(timeline) -> Iterable[dict]:
    """Request-stream form of a timeline: :func:`timeline_rows` tagged
    with ``kind`` markers so NDJSON consumers can route rows without
    positional knowledge."""
    for row in timeline_rows(timeline):
        yield {"kind": "interval", **row}


# --------------------------------------------------------------------- #
# Timeline
# --------------------------------------------------------------------- #
def timeline_rows(timeline) -> Iterable[dict]:
    """Per-interval rows with derived rate metrics appended.

    ``ipc``, ``llt_mpki`` and ``llc_mpki`` are computed from the interval
    *deltas*, so each row is that interval's own behaviour, not a running
    average — the whole point of the timeline.
    """
    for row in timeline.rows():
        n = row["instructions"]
        c = row["cycles"]
        row["ipc"] = n / c if c else 0.0
        row["llt_mpki"] = 1000.0 * row.get("llt.misses", 0) / n if n else 0.0
        row["llc_mpki"] = 1000.0 * row.get("llc.misses", 0) / n if n else 0.0
        yield row


def write_timeline_jsonl(path, timeline) -> Path:
    return write_jsonl(path, timeline_rows(timeline))


def write_timeline_csv(path, timeline) -> Path:
    """Columnar CSV of the timeline (one column per counter, sorted)."""
    path = Path(path)
    rows = list(timeline_rows(timeline))
    if not rows:
        _write_atomic(path, b"")
        return path
    fieldnames = ["mark", "instructions", "cycles", "ipc",
                  "llt_mpki", "llc_mpki"]
    fieldnames += sorted(k for k in rows[0] if k not in fieldnames)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


# --------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------- #
def write_events_jsonl(path, events) -> Path:
    """One decision event per line, self-describing field names."""
    return write_jsonl(path, events.rows())


# --------------------------------------------------------------------- #
# Run manifest + full-run export
# --------------------------------------------------------------------- #
def run_manifest(
    *,
    workload: str,
    config,
    budget: int,
    seed: int,
    result=None,
    telemetry: Optional[Telemetry] = None,
    artifacts: Optional[dict] = None,
) -> dict:
    """The JSON-safe manifest describing one observed run."""
    # Imported here: export stays importable without the sim package.
    from repro.sim.diskcache import CACHE_SCHEMA_VERSION

    from repro.obs import harness as obs_harness

    manifest = {
        "schema": 1,
        "workload": workload,
        "config_name": getattr(config, "name", str(config)),
        "config_digest": config_digest(config),
        "budget": budget,
        "seed": seed,
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "created_unix": time.time(),
        "wall_time_s": telemetry.wall_time if telemetry else None,
        "peak_rss_bytes": peak_rss_bytes(),
        "python": sys.version.split()[0],
        # Per-kind harness counters (retries, timeouts, cache corruption,
        # resume skips) accumulated so far in this process: a non-empty
        # value flags that this run's sweep needed fault recovery.
        "resilience": dict(sorted(obs_harness.counters_snapshot().items())),
    }
    if result is not None:
        manifest["metrics"] = result.metrics()
        manifest["instructions"] = result.instructions
    if telemetry is not None:
        manifest["telemetry"] = {
            "interval": telemetry.spec.interval,
            "intervals": len(telemetry.timeline) if telemetry.timeline else 0,
            "events_emitted": (
                telemetry.events.emitted if telemetry.events else 0
            ),
            "events_dropped": (
                telemetry.events.dropped() if telemetry.events else 0
            ),
        }
    if artifacts:
        manifest["artifacts"] = artifacts
    return manifest


def run_stem(workload: str, config, budget: int, seed: int) -> str:
    """Content-derived artifact filename stem for one run."""
    return f"{workload}-{config_digest(config)[:12]}-b{budget}-s{seed}"


def export_run(
    directory,
    *,
    workload: str,
    config,
    budget: int,
    seed: int,
    result=None,
    telemetry: Optional[Telemetry] = None,
) -> Path:
    """Write one run's full artifact set; returns the manifest path."""
    directory = Path(directory)
    stem = run_stem(workload, config, budget, seed)
    artifacts = {}
    if telemetry is not None and telemetry.timeline is not None:
        artifacts["timeline_csv"] = f"{stem}.timeline.csv"
        artifacts["timeline_jsonl"] = f"{stem}.timeline.jsonl"
        write_timeline_csv(
            directory / artifacts["timeline_csv"], telemetry.timeline
        )
        write_timeline_jsonl(
            directory / artifacts["timeline_jsonl"], telemetry.timeline
        )
    if telemetry is not None and telemetry.events is not None:
        artifacts["events_jsonl"] = f"{stem}.events.jsonl"
        write_events_jsonl(
            directory / artifacts["events_jsonl"], telemetry.events
        )
    manifest = run_manifest(
        workload=workload,
        config=config,
        budget=budget,
        seed=seed,
        result=result,
        telemetry=telemetry,
        artifacts=artifacts,
    )
    manifest_path = directory / f"{stem}.manifest.json"
    _write_atomic(
        manifest_path,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )
    return manifest_path


# --------------------------------------------------------------------- #
# Profile reports (the experiments CLI's --profile flag)
# --------------------------------------------------------------------- #
def profile_stats_top(profiler, top_n: int = 30) -> list:
    """Top-``top_n`` functions of a finished cProfile run, by cumulative
    time. JSON-safe rows, heaviest first."""
    import pstats

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top_n]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def write_profile_report(
    directory,
    *,
    experiment: str,
    rows: list,
    wall_time_s: Optional[float] = None,
    params: Optional[dict] = None,
) -> Path:
    """Persist one experiment's profile (manifest envelope + hot rows), so
    hot-path regressions are diagnosable from run artifacts alone."""
    payload = {
        "schema": 1,
        "kind": "profile",
        "experiment": experiment,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "peak_rss_bytes": peak_rss_bytes(),
        "wall_time_s": wall_time_s,
        "params": params or {},
        "top_cumulative": rows,
    }
    path = Path(directory) / f"profile-{experiment}.json"
    _write_atomic(path, json.dumps(payload, indent=2, sort_keys=True).encode())
    return path


# --------------------------------------------------------------------- #
# Benchmark reports (machine-readable BENCH_*.json trajectories)
# --------------------------------------------------------------------- #
def write_benchmark_report(
    path, *, benchmark: str, measurements: dict, params: Optional[dict] = None
) -> Path:
    """Persist a benchmark's measurements wrapped in manifest metadata.

    Gives throughput benchmarks the same machine-readable envelope as
    run manifests, so successive ``BENCH_*.json`` files form a
    comparable trajectory (schema version, python, host memory state).
    """
    from repro.sim.diskcache import CACHE_SCHEMA_VERSION

    payload = {
        "schema": 1,
        "benchmark": benchmark,
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "peak_rss_bytes": peak_rss_bytes(),
        "params": params or {},
        "measurements": measurements,
    }
    path = Path(path)
    _write_atomic(path, json.dumps(payload, indent=2, sort_keys=True).encode())
    return path
