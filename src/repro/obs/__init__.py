"""``repro.obs`` — the observability subsystem.

Three capabilities, all off by default and verified to leave simulation
outputs bit-identical:

* **Interval time-series metrics** (:mod:`repro.obs.timeline`): snapshot
  every registered stats bag each N instructions into columnar deltas —
  per-interval LLT/LLC MPKI, bypass rates, walk activity.
* **Decision-event tracing** (:mod:`repro.obs.events`): a bounded ring
  buffer of structured predictor decisions (LLT bypass, shadow-table
  promotion and misprediction flush, PFQ push/hit, cbPred bypass,
  verdict-vs-ground-truth), emitted through nullable probes.
* **Baseline regression gate** (:mod:`repro.obs.baseline`, ``python -m
  repro.obs``): record named metric baselines and fail with a readable
  diff when a later run regresses beyond a tolerance.

Entry points::

    from repro.obs import TelemetrySpec
    telemetry = TelemetrySpec(interval=5000).build()
    result = run_trace(trace, config, telemetry=telemetry)
    telemetry.timeline.series("llt.misses")   # per-interval LLT MPKI
    telemetry.events.counts()                  # decision-event histogram

    python -m repro.obs record --out baseline.json
    python -m repro.obs check --baseline baseline.json

This package's core (timeline/events/telemetry) depends only on
:mod:`repro.common`, so the simulator can import it without cycles;
exporters and the baseline gate live in their own modules and are
imported on use.
"""

from repro.obs.events import (
    EV_CACHE_CORRUPT,
    EV_FAULT_INJECT,
    EV_LLC_BYPASS,
    EV_LLC_MARK_DP,
    EV_LLC_VERDICT,
    EV_LLT_BYPASS,
    EV_LLT_DEMOTE,
    EV_LLT_VERDICT,
    EV_PFQ_HIT,
    EV_PFQ_PUSH,
    EV_POOL_REBUILD,
    EV_RESUME_SKIP,
    EV_RUN_RETRY,
    EV_RUN_TIMEOUT,
    EV_SHADOW_EVICT,
    EV_SHADOW_HIT,
    EV_SHADOW_PROMOTE,
    EV_WALK,
    EVENT_FIELDS,
    EventTrace,
)
from repro.obs.harness import (
    counters_snapshot,
    harness_counters,
    harness_events,
    reset_harness,
)
from repro.obs.telemetry import (
    Telemetry,
    TelemetrySpec,
    auto_state,
    build_auto,
    disable_auto,
    enable_auto,
    set_auto_state,
)
from repro.obs.timeline import DEFAULT_INTERVAL, TimelineSampler

__all__ = [
    "DEFAULT_INTERVAL",
    "EVENT_FIELDS",
    "EV_CACHE_CORRUPT",
    "EV_FAULT_INJECT",
    "EV_POOL_REBUILD",
    "EV_RESUME_SKIP",
    "EV_RUN_RETRY",
    "EV_RUN_TIMEOUT",
    "EV_LLC_BYPASS",
    "EV_LLC_MARK_DP",
    "EV_LLC_VERDICT",
    "EV_LLT_BYPASS",
    "EV_LLT_DEMOTE",
    "EV_LLT_VERDICT",
    "EV_PFQ_HIT",
    "EV_PFQ_PUSH",
    "EV_SHADOW_EVICT",
    "EV_SHADOW_HIT",
    "EV_SHADOW_PROMOTE",
    "EV_WALK",
    "EventTrace",
    "Telemetry",
    "TelemetrySpec",
    "TimelineSampler",
    "auto_state",
    "build_auto",
    "counters_snapshot",
    "disable_auto",
    "enable_auto",
    "harness_counters",
    "harness_events",
    "reset_harness",
    "set_auto_state",
]
