#!/usr/bin/env python
"""Design-space exploration beyond the paper's default dpPred.

Sweeps the three knobs Section V-A fixes by fiat — the prediction
threshold, the pHIST geometry, and the shadow-table size — on a couple of
representative workloads, and prints the IPC / accuracy trade-off each
point lands on. This is the ablation a hardware team would run before
freezing an RTL parameterisation.

Usage::

    python examples/design_space_exploration.py [accesses]
"""

import sys
from dataclasses import replace

from repro.experiments.report import render_table
from repro.sim import fast_config, run_cached

WORKLOADS = ["cactusADM", "mcf"]  # most / least predictable


def sweep(budget: int):
    base_cfg = fast_config()
    rows = []
    sweeps = []
    for threshold in (2, 4, 6, 7):
        sweeps.append(
            (f"threshold={threshold}",
             replace(base_cfg, tlb_predictor="dppred",
                     dppred_threshold=threshold, track_reference=True))
        )
    for pc_bits, vpn_bits in ((4, 4), (6, 4), (8, 4), (6, 0), (10, 0)):
        sweeps.append(
            (f"pHIST {pc_bits}bPC x {vpn_bits}bVPN",
             replace(base_cfg, tlb_predictor="dppred",
                     dppred_pc_bits=pc_bits, dppred_vpn_bits=vpn_bits,
                     track_reference=True))
        )
    for shadow in (0, 1, 2, 4, 8):
        pred = "dppred" if shadow else "dppred_sh"
        sweeps.append(
            (f"shadow={shadow}",
             replace(base_cfg, tlb_predictor=pred,
                     dppred_shadow_entries=max(shadow, 0),
                     track_reference=True))
        )

    for label, cfg in sweeps:
        row = [label]
        for wl in WORKLOADS:
            base = run_cached(wl, base_cfg, budget)
            pred = run_cached(wl, cfg, budget)
            acc = pred.tlb_accuracy
            row.extend(
                [
                    pred.speedup_over(base),
                    100 * acc if acc is not None else None,
                ]
            )
        rows.append(tuple(row))
    return rows


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"sweeping dpPred design space on {WORKLOADS} ({budget} accesses)")
    rows = sweep(budget)
    headers = ["configuration"]
    for wl in WORKLOADS:
        headers.extend([f"{wl} IPC x", f"{wl} acc %"])
    print()
    print(render_table(headers, rows, title="dpPred design-space sweep"))
    print()
    print(
        "Defaults (threshold 6, 6b PC x 4b VPN pHIST, 2-entry shadow) sit\n"
        "at the accuracy knee: looser thresholds bypass more but mispredict\n"
        "on mcf; bigger shadow tables trade coverage for accuracy."
    )


if __name__ == "__main__":
    main()
