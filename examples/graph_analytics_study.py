#!/usr/bin/env python
"""Graph-analytics study: why TLBs die under graph workloads.

The paper's motivation: graph analytics (GAPBS/Ligra/Graph500) stream huge
edge arrays while gathering per-vertex state, so the last-level TLB fills
with entries that will never hit again. This example characterises all
nine graph workloads of Table II (deadness, DOA share, walk latency), then
shows how much of that the predictors reclaim.

Usage::

    python examples/graph_analytics_study.py [accesses]
"""

import sys

from repro.experiments.report import render_table
from repro.sim import fast_config, run_cached

GRAPH_WORKLOADS = [
    "pr", "bfs", "cc", "sssp", "bc", "mis", "Triangle", "KCore", "graph500",
]


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    char_cfg = fast_config(track_residency=True, track_correlation=True)
    pred_cfg = fast_config(
        tlb_predictor="dppred", llc_predictor="cbpred", track_reference=True
    )
    base_cfg = fast_config()

    char_rows = []
    pred_rows = []
    for wl in GRAPH_WORKLOADS:
        print(f"simulating {wl}...", flush=True)
        char = run_cached(wl, char_cfg, budget)
        base = run_cached(wl, base_cfg, budget)
        pred = run_cached(wl, pred_cfg, budget)

        s = char.llt_residency
        char_rows.append(
            (
                wl,
                100 * s.dead_fraction,
                100 * s.doa_eviction_fraction,
                char.llt_mpki,
                char.avg_walk_latency,
                100 * char.doa_block_on_doa_page_fraction,
            )
        )
        red = (
            100 * (base.llt_mpki - pred.llt_mpki) / base.llt_mpki
            if base.llt_mpki
            else 0.0
        )
        pred_rows.append(
            (
                wl,
                pred.speedup_over(base),
                red,
                100 * pred.tlb_accuracy if pred.tlb_accuracy else None,
                pred.llt_bypasses,
                pred.llc_bypasses,
            )
        )

    print()
    print(
        render_table(
            ["workload", "LLT dead %", "DOA evict %", "LLT MPKI",
             "avg walk cyc", "DOA blk on DOA pg %"],
            char_rows,
            title="TLB deadness under graph analytics (baseline machine)",
        )
    )
    print()
    print(
        render_table(
            ["workload", "norm. IPC", "LLT MPKI red %", "dpPred acc %",
             "LLT bypasses", "LLC bypasses"],
            pred_rows,
            title="What dpPred + cbPred reclaim",
        )
    )


if __name__ == "__main__":
    main()
