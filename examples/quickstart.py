#!/usr/bin/env python
"""Quickstart: measure what dpPred + cbPred buy on one workload.

Runs the cactusADM-like stencil (the paper's best case) on the scaled
machine, with and without the predictors, and prints the headline metrics
the paper reports: normalized IPC, LLT MPKI, LLC MPKI, and the predictors'
bypass counts.

Usage::

    python examples/quickstart.py [workload] [accesses]
"""

import sys

from repro.sim import fast_config, run_trace
from repro.workloads import get_trace, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cactusADM"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    if workload not in workload_names():
        raise SystemExit(
            f"unknown workload {workload!r}; choose from {workload_names()}"
        )

    print(f"generating {workload} trace ({budget} accesses)...")
    trace = get_trace(workload, budget)
    print(
        f"  {trace.num_accesses} accesses, {trace.num_instructions} "
        f"instructions, {trace.footprint_pages} data pages"
    )

    print("simulating baseline (LRU everywhere)...")
    baseline = run_trace(trace, fast_config())

    print("simulating dpPred + cbPred...")
    improved = run_trace(
        trace,
        fast_config(
            tlb_predictor="dppred",
            llc_predictor="cbpred",
            track_reference=True,
        ),
    )

    speedup = improved.speedup_over(baseline)
    print()
    print(f"{'metric':24s} {'baseline':>12s} {'dpPred+cbPred':>14s}")
    print(f"{'IPC':24s} {baseline.ipc:12.4f} {improved.ipc:14.4f}")
    print(f"{'LLT MPKI':24s} {baseline.llt_mpki:12.2f} {improved.llt_mpki:14.2f}")
    print(f"{'LLC MPKI':24s} {baseline.llc_mpki:12.2f} {improved.llc_mpki:14.2f}")
    print(f"{'memory accesses':24s} {baseline.mem_accesses:12d} {improved.mem_accesses:14d}")
    print()
    print(f"normalized IPC        : {speedup:.3f}x")
    print(f"LLT bypasses (dpPred) : {improved.llt_bypasses}")
    print(f"LLC bypasses (cbPred) : {improved.llc_bypasses}")
    print(f"shadow-table saves    : {improved.llt_shadow_hits}")
    if improved.tlb_accuracy is not None:
        print(f"dpPred accuracy       : {100 * improved.tlb_accuracy:.1f}%")
    if improved.tlb_coverage is not None:
        print(f"dpPred coverage       : {100 * improved.tlb_coverage:.1f}%")
    if improved.llc_accuracy is not None:
        print(f"cbPred accuracy       : {100 * improved.llc_accuracy:.1f}%")


if __name__ == "__main__":
    main()
