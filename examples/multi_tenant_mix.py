#!/usr/bin/env python
"""Multi-tenant walkthrough: consolidation, shootdowns, and huge pages.

Builds the ``mix2`` workload (bfs + mcf interleaved in two ASID-tagged
address spaces), runs it with and without dpPred + cbPred, and compares
each tenant against the identical component trace run standalone — so
every delta is the consolidation itself: context-switch TLB/PWC
shootdowns and inter-tenant cache interference. A final section backs
half the address space with 2 MB huge pages and shows how splintered
LLT fills keep dpPred's page granularity while walks shorten.

Usage::

    python examples/multi_tenant_mix.py [mix] [accesses]
"""

import sys
from dataclasses import replace

from repro.sim import fast_config, hugepage_config, mix2_config, mix4_config, run_trace
from repro.workloads import MIX_COMPONENTS, get_trace

CONFIGS = {"mix2": mix2_config, "mix4": mix4_config}


def predicted(cfg):
    return replace(
        cfg,
        tlb_predictor="dppred",
        llc_predictor="cbpred",
        track_reference=True,
    )


def show(label, result):
    tenants = result.raw.get("tenants", {})
    print(
        f"{label:22s} IPC {result.ipc:7.4f}  LLT MPKI {result.llt_mpki:7.2f}"
        f"  LLC MPKI {result.llc_mpki:7.2f}"
        f"  ctx-switches {tenants.get('context_switches', 0):5d}"
        f"  shootdowns {tenants.get('shootdowns', 0):5d}"
    )


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix2"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    if mix not in CONFIGS:
        raise SystemExit(f"unknown mix {mix!r}; choose from {sorted(CONFIGS)}")
    components = MIX_COMPONENTS[mix]
    cfg = CONFIGS[mix]()

    print(f"generating {mix} trace ({budget} accesses, "
          f"tenants: {', '.join(components)})...")
    trace = get_trace(mix, budget)
    print(f"  {trace.num_accesses} accesses across "
          f"{len(set(trace.asids.tolist()))} address spaces "
          f"(quantum-scheduled, seeded jitter)")

    print("simulating consolidated baseline and dpPred + cbPred...")
    base = run_trace(trace, cfg)
    pred = run_trace(trace, predicted(cfg))
    print()
    show(f"{mix} baseline", base)
    show(f"{mix} dpPred+cbPred", pred)
    print(f"{'':22s} consolidation speedup from predictors: "
          f"{pred.speedup_over(base):.3f}x")

    # The mix is built from the *same* traces the components produce
    # standalone at the per-tenant budget, so these rows isolate the
    # cost of sharing: shootdowns on every context switch plus cache
    # contention between address spaces.
    print("\nsolo components at the same per-tenant budget:")
    per_tenant = budget // len(components)
    for comp in components:
        solo = run_trace(get_trace(comp, per_tenant), fast_config())
        show(f"  {comp} (solo)", solo)

    print("\nhuge pages: half the address space on 2 MB mappings...")
    huge = hugepage_config()
    for comp in components:
        solo = run_trace(get_trace(comp, per_tenant), huge)
        show(f"  {comp} (2M huge)", solo)
    print(
        "\n(LLT fills stay 4 KB granules under huge mappings — dpPred "
        "sees the same dead-page signal while page walks terminate at "
        "the PD level)"
    )


if __name__ == "__main__":
    main()
