#!/usr/bin/env python
"""Bring your own workload: evaluate the predictors on a hash-join kernel.

The suite ships the paper's 14 workloads, but the `Workload` base class is
public API: subclass it, emit the references your kernel makes, and run it
through the same machine. This example models a database hash join — a
probe relation streamed once (pure DOA pages) against a hash table whose
buckets are hit randomly (the reusable set) — a workload family the paper
does not evaluate but its predictors should love.

Usage::

    python examples/custom_workload.py [accesses]
"""

import sys

import numpy as np

from repro.sim import fast_config, run_trace
from repro.workloads import AddressSpace, Workload
from repro.workloads.trace import TraceBuilder, pc_for_site


class HashJoin(Workload):
    """Streamed probe relation joined against an in-memory hash table."""

    name = "hashjoin"
    description = "database hash join: probe stream vs bucket array"

    probe_bytes = 48 << 20     # probe relation, streamed once
    table_bytes = 480 * 1024   # hash table: ~120 pages, randomly probed
    tuple_size = 512           # wide rows: few tuples per page
    gap = 3

    def generate(self, budget: int):
        builder = TraceBuilder(self.name, budget)
        space = AddressSpace()
        probe = space.region("probe", self.probe_bytes)
        table = space.region("table", self.table_bytes)
        rng = self._rng()
        n_tuples = self.probe_bytes // self.tuple_size
        buckets = self.table_bytes // 64
        pc_probe = pc_for_site(0)
        pc_bucket = pc_for_site(1)
        pc_chain = pc_for_site(2)
        pos = 0
        while not builder.full:
            # Read the next probe tuple (sequential stream).
            builder.emit(
                pc_probe, probe + pos * self.tuple_size, gap=self.gap
            )
            # Hash it into a bucket; ~30% of probes walk one chain link.
            bucket = int(rng.randint(0, buckets))
            builder.emit(pc_bucket, table + bucket * 64, gap=self.gap)
            if rng.rand() < 0.3:
                chained = int(rng.randint(0, buckets))
                builder.emit(pc_chain, table + chained * 64, gap=self.gap)
            pos = (pos + 1) % n_tuples
        return builder.build()


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    trace = HashJoin(seed=7).generate(budget)
    print(
        f"hash join: {trace.num_accesses} accesses over "
        f"{trace.footprint_pages} pages"
    )

    baseline = run_trace(trace, fast_config())
    improved = run_trace(
        trace,
        fast_config(
            tlb_predictor="dppred",
            llc_predictor="cbpred",
            track_reference=True,
        ),
    )

    red = (
        100 * (baseline.llt_mpki - improved.llt_mpki) / baseline.llt_mpki
        if baseline.llt_mpki
        else 0.0
    )
    print(f"baseline  : IPC {baseline.ipc:.4f}, LLT MPKI {baseline.llt_mpki:.2f}")
    print(f"predictors: IPC {improved.ipc:.4f}, LLT MPKI {improved.llt_mpki:.2f}")
    print(f"normalized IPC {improved.speedup_over(baseline):.3f}x, "
          f"LLT MPKI reduction {red:.1f}%")
    if improved.tlb_accuracy is not None:
        print(f"dpPred accuracy {100 * improved.tlb_accuracy:.1f}%, "
              f"coverage {100 * improved.tlb_coverage:.1f}%")
    print(
        "\nThe probe stream's pages are dead-on-arrival and PC-predictable;"
        "\nbypassing them keeps the bucket array resident in the LLT."
    )


if __name__ == "__main__":
    main()
