"""Ablation bench (beyond the paper): dpPred confidence-threshold sweep."""


def test_ablation_threshold(run_report):
    """Accuracy/coverage trade-off around the paper's threshold of 6."""
    report = run_report("ablation_threshold")
    assert report.render()
