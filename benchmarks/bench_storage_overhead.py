"""Benchmark target regenerating the paper's storage analysis (Sec V-D/VI-D) (experiment id: storage)."""


def test_storage(run_report):
    """Predictor storage overhead accounting."""
    report = run_report("storage")
    assert report.render()
