"""Benchmark target regenerating the paper's Figure 11c (experiment id: fig11c)."""


def test_fig11c(run_report):
    """dpPred IPC across shadow table sizes."""
    report = run_report("fig11c")
    assert report.render()
