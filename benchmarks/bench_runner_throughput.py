"""Runner-throughput benchmark: hot-path, engine, fan-out, disk-cache wins.

Four measurements, each with a built-in correctness cross-check (the
script exits non-zero on any simulator-output divergence, which is what
CI's smoke invocation relies on):

1. **Single-run fast path** — one baseline run executed twice: once on
   the optimised path (no listeners attached, chunked ``iter_records``)
   and once emulating the pre-optimisation dispatch behaviour (no-op
   listeners attached to every cache and TLB, fully materialised record
   lists). The no-op listeners cannot change simulation outcomes, so the
   two runs must produce byte-identical metrics — and the time ratio is
   the fast-path speedup.
2. **Engine** — scalar vs batched engine: cold single-run throughput
   on the L1-resident showcase workload (where the paper's "L1 absorbs
   ~everything" premise holds and bulk retirement pays), plus the CI
   gate's number: median-of-5 aggregate speedup with bit-identity over
   the six-workload suite prefix with dpPred+cbPred enabled — the
   hybrid bulk+flat path, no scalar fallback allowed.
3. **Matrix fan-out** — a (workloads x {baseline, dpPred}) matrix run
   serially and with ``--jobs`` worker processes; results must match
   bit-for-bit.
4. **Disk-cache replay** — the same matrix replayed from a freshly
   populated on-disk cache; results must match bit-for-bit.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner_throughput.py
    PYTHONPATH=src python benchmarks/bench_runner_throughput.py \
        --budget 8000 --jobs 2 --workloads 4
    ... --strict   # also fail if speedup targets are missed

Note this file is a standalone script, not a pytest-benchmark target like
its ``bench_fig*`` siblings — CI invokes it directly.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time

import repro.sim.diskcache as diskcache
from repro.experiments.report import render_table
from repro.mem.cache import CacheListener
from repro.sim.config import fast_config
from repro.sim.machine import Machine
from repro.sim.parallel import RunRequest, run_matrix
from repro.sim.runner import clear_run_cache, machine_seed_for, run_trace
from repro.vm.tlb import TlbListener
from repro.workloads.suite import clear_trace_cache, get_trace, workload_names

#: Speedup targets enforced under --strict (see ISSUE/EXPERIMENTS.md).
SINGLE_RUN_TARGET = 1.5
PARALLEL_TARGET = 2.5
#: Batched-engine suite-speedup floor: median-of-5 aggregate over the
#: six-workload suite prefix with dpPred+cbPred enabled — the config the
#: paper is about, not the L1-resident showcase. 2.0x reflects the fully
#: inlined flat tier (walk + PWC + pooled cache lines in the interpreter
#: loop); see EXPERIMENTS.md "Engines".
ENGINE_TARGET = 2.0
#: Workload for the engine *showcase* phase: L1-resident, no same-page
#: runs, so the scalar engine pays full per-record lookups while the
#: batched engine retires nearly everything in bulk.
ENGINE_WORKLOAD = "locality"
#: The engine suite phase always measures this many suite workloads,
#: independent of --workloads (which sizes the matrix phases): the CI
#: gate is defined over the six-workload suite prefix.
ENGINE_SUITE_WORKLOADS = 6
#: Repetitions for the engine phase (median + min reported). Nine reps
#: per (workload, engine) cell keep the bootstrap 95% CI on the suite
#: speedup tight enough for the strict gate to judge its lower bound
#: against the target rather than the noisier point estimate.
ENGINE_REPEATS = 9
#: Bootstrap resamples for the suite-speedup confidence interval. The
#: fixed seed keeps the interval itself reproducible for given timings.
BOOTSTRAP_RESAMPLES = 2000
BOOTSTRAP_ALPHA = 0.05
BOOTSTRAP_SEED = 0x5EED


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _bootstrap_speedup_ci(
    per_workload_times,
    n_boot: int = BOOTSTRAP_RESAMPLES,
    alpha: float = BOOTSTRAP_ALPHA,
    seed: int = BOOTSTRAP_SEED,
):
    """Percentile-bootstrap CI for the suite aggregate speedup.

    ``per_workload_times`` is a list of ``(scalar_reps, batched_reps)``
    per workload. Each bootstrap draw resamples the reps of every
    (workload, engine) cell with replacement, recomputes the statistic
    the gate uses — ratio of summed per-workload medians — and the
    interval is the central ``1 - alpha`` mass of those draws. CI judges
    the speedup floor against this interval instead of a single median,
    so one noisy rep on a shared runner cannot flake the gate.
    """
    rng = random.Random(seed)
    draws = []
    for _ in range(n_boot):
        total_scalar = total_batched = 0.0
        for scalar_reps, batched_reps in per_workload_times:
            resampled_s = [
                scalar_reps[rng.randrange(len(scalar_reps))]
                for _ in scalar_reps
            ]
            resampled_b = [
                batched_reps[rng.randrange(len(batched_reps))]
                for _ in batched_reps
            ]
            total_scalar += _median(resampled_s)
            total_batched += _median(resampled_b)
        draws.append(
            total_scalar / total_batched if total_batched else 0.0
        )
    draws.sort()
    low = draws[int((alpha / 2) * (n_boot - 1))]
    high = draws[int((1 - alpha / 2) * (n_boot - 1))]
    return low, high


def _fingerprint(result) -> bytes:
    """Canonical bytes for divergence checks."""
    return json.dumps(result.to_dict(), sort_keys=True).encode()


class _MethodCallDict(dict):
    """Counter dict that pays a Python method call per update, emulating
    the per-event ``Stats.add`` dispatch the fast path eliminated."""

    def __setitem__(self, key, value):
        dict.__setitem__(self, key, value)


def _slow_counters(structure):
    """Route a structure's counter bumps through :class:`_MethodCallDict`."""
    proxy = _MethodCallDict(structure.stats.counters)
    structure.stats.counters = proxy
    structure._stat = proxy


def _legacy_run(trace, config, seed):
    """Emulate the pre-fast-path runner: no-op listener dispatch on every
    structure, generic replacement-policy dispatch instead of the fused
    LRU path, no same-page TLB filter, per-event counter method calls,
    and fully materialised record lists. None of these can change
    simulation outcomes — which the divergence check below exploits."""
    machine = Machine(config, seed=seed)
    machine._page_filter = False
    for cache in (machine.l1d, machine.l2, machine.llc):
        if cache.listener is None:
            cache.listener = CacheListener()
        cache._lru = None
        _slow_counters(cache)
    for tlb in (machine.l1_itlb, machine.l1_dtlb, machine.l2_tlb):
        if tlb.listener is None:
            tlb.listener = TlbListener()
        tlb._lru = None
        _slow_counters(tlb)
    for structure in (
        machine.hierarchy,
        machine.hierarchy.memory,
        machine.walker,
        machine.walker.pwc,
    ):
        _slow_counters(structure)
    records = list(
        zip(
            trace.pcs.tolist(),
            trace.vaddrs.tolist(),
            trace.writes.tolist(),
            trace.gaps.tolist(),
        )
    )
    access = machine.access
    for pc, vaddr, is_write, gap in records:
        access(pc, vaddr, is_write, gap)
    return machine.finalize(trace.name)


def bench_single_run(budget: int, repeats: int = 3):
    """Fast path vs emulated legacy dispatch on one baseline run."""
    config = fast_config()
    trace = get_trace("mcf", budget)
    seed = machine_seed_for(42)

    def best(fn):
        times, result = [], None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        return min(times), result

    t_fast, r_fast = best(lambda: run_trace(trace, config, seed=seed))
    t_legacy, r_legacy = best(lambda: _legacy_run(trace, config, seed))

    diverged = _fingerprint(r_fast) != _fingerprint(r_legacy)
    return {
        "t_fast": t_fast,
        "t_legacy": t_legacy,
        "speedup": t_legacy / t_fast if t_fast else 0.0,
        "accesses_per_sec": budget / t_fast if t_fast else 0.0,
        "diverged": diverged,
    }


def bench_engine(budget: int, num_workloads: int, repeats: int = ENGINE_REPEATS):
    """Batched vs scalar engine.

    Two regimes, both bit-identity-checked:

    * **showcase** — cold single-run throughput on the L1-resident
      showcase workload (bulk retirement's best case);
    * **suite** — the six-workload suite prefix with dpPred+cbPred
      enabled (the paper's configuration), ``repeats`` reps per
      (workload, engine), aggregate speedup reported as the ratio of
      per-workload *median* times (plus a min-based figure). This is
      the number the CI gate enforces.
    """
    seed = machine_seed_for(42)

    def measure(trace, config, engine):
        times, result, stats = [], None, None
        for _ in range(repeats):
            machine = Machine(config, seed=seed)
            start = time.perf_counter()
            result = machine.run(trace, engine=engine)
            times.append(time.perf_counter() - start)
            stats = machine.engine_stats
        return {
            "median": _median(times),
            "min": min(times),
            "times": times,
            "result": result,
            "stats": stats,
        }

    showcase = get_trace(ENGINE_WORKLOAD, max(budget, 100000))
    base_cfg = fast_config()
    m_scalar = measure(showcase, base_cfg, "scalar")
    m_batched = measure(showcase, base_cfg, "batched")
    t_scalar, t_batched = m_scalar["median"], m_batched["median"]
    diverged = (
        _fingerprint(m_scalar["result"]) != _fingerprint(m_batched["result"])
    )

    # The suite phase runs the configuration the paper studies — both
    # predictors on — so a batched-engine regression on any predictor
    # decision path shows up here as divergence or a fallback.
    suite_cfg = fast_config(tlb_predictor="dppred", llc_predictor="cbpred")
    suite_names = workload_names()[:ENGINE_SUITE_WORKLOADS]
    t_suite = {"scalar": 0.0, "batched": 0.0}
    t_suite_min = {"scalar": 0.0, "batched": 0.0}
    per_workload = {}
    rep_times = []
    fallbacks = 0
    for name in suite_names:
        trace = get_trace(name, budget)
        fps = {}
        meas = {}
        for engine in ("scalar", "batched"):
            m = measure(trace, suite_cfg, engine)
            meas[engine] = m
            t_suite[engine] += m["median"]
            t_suite_min[engine] += m["min"]
            fps[engine] = _fingerprint(m["result"])
        stats = meas["batched"]["stats"]
        if stats.get("fallback") or stats.get("engine") != "batched":
            fallbacks += 1
        diverged = diverged or fps["scalar"] != fps["batched"]
        rep_times.append((meas["scalar"]["times"], meas["batched"]["times"]))
        per_workload[name] = {
            "speedup": (
                meas["scalar"]["median"] / meas["batched"]["median"]
                if meas["batched"]["median"] else 0.0
            ),
            "t_scalar_median": meas["scalar"]["median"],
            "t_batched_median": meas["batched"]["median"],
            "t_scalar_reps": meas["scalar"]["times"],
            "t_batched_reps": meas["batched"]["times"],
        }
    ci_low, ci_high = _bootstrap_speedup_ci(rep_times)

    return {
        "workload": ENGINE_WORKLOAD,
        "t_scalar": t_scalar,
        "t_batched": t_batched,
        "scalar_rec_per_sec": len(showcase) / t_scalar if t_scalar else 0.0,
        "batched_rec_per_sec": len(showcase) / t_batched if t_batched else 0.0,
        "speedup": t_scalar / t_batched if t_batched else 0.0,
        "bulk_records": (
            m_batched["stats"].get("bulk_records", 0)
            if m_batched["stats"] else 0
        ),
        "suite_workloads": suite_names,
        "suite_config": "dppred+cbpred",
        "suite_repeats": repeats,
        "suite_t_scalar": t_suite["scalar"],
        "suite_t_batched": t_suite["batched"],
        "suite_speedup": (
            t_suite["scalar"] / t_suite["batched"]
            if t_suite["batched"]
            else 0.0
        ),
        "suite_speedup_min": (
            t_suite_min["scalar"] / t_suite_min["batched"]
            if t_suite_min["batched"]
            else 0.0
        ),
        "suite_speedup_ci_low": ci_low,
        "suite_speedup_ci_high": ci_high,
        "suite_bootstrap": {
            "resamples": BOOTSTRAP_RESAMPLES,
            "alpha": BOOTSTRAP_ALPHA,
            "seed": BOOTSTRAP_SEED,
        },
        "suite_per_workload": per_workload,
        "suite_fallbacks": fallbacks,
        "bit_identical": not diverged,
        "diverged": diverged,
    }


def _matrix(budget: int, num_workloads: int):
    workloads = workload_names()[:num_workloads]
    configs = [fast_config(), fast_config(tlb_predictor="dppred")]
    return [
        RunRequest(wl, cfg, budget) for wl in workloads for cfg in configs
    ]


def _timed_matrix(requests, jobs):
    clear_run_cache()
    clear_trace_cache()
    start = time.perf_counter()
    results = run_matrix(requests, jobs=jobs)
    return time.perf_counter() - start, results


def bench_matrix(budget: int, num_workloads: int, jobs: int):
    """Serial vs parallel wall-clock on the declared run matrix."""
    requests = _matrix(budget, num_workloads)
    diskcache.disable()
    t_serial, serial = _timed_matrix(requests, jobs=1)
    t_parallel, parallel = _timed_matrix(requests, jobs=jobs)
    diverged = any(
        _fingerprint(serial[req]) != _fingerprint(parallel[req])
        for req in requests
    )
    return {
        "runs": len(requests),
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel else 0.0,
        "diverged": diverged,
        "serial_results": serial,
    }


def bench_diskcache(budget: int, num_workloads: int, reference):
    """Cold populate + warm replay of the matrix through the disk cache."""
    requests = _matrix(budget, num_workloads)
    with tempfile.TemporaryDirectory() as tmp:
        diskcache.enable(tmp)
        try:
            t_cold, _ = _timed_matrix(requests, jobs=1)
            t_warm, replayed = _timed_matrix(requests, jobs=1)
        finally:
            diskcache.disable()
    diverged = any(
        _fingerprint(replayed[req]) != _fingerprint(reference[req])
        for req in requests
    )
    return {
        "t_cold": t_cold,
        "t_warm": t_warm,
        "speedup": t_cold / t_warm if t_warm else 0.0,
        "diverged": diverged,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the experiment runner's performance subsystem."
    )
    parser.add_argument("--budget", type=int, default=40000,
                        help="accesses per run (default 40000)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel phase")
    parser.add_argument("--workloads", type=int, default=14,
                        help="suite prefix size for the matrix phases")
    parser.add_argument("--strict", action="store_true",
                        help="fail if speedup targets are missed, not only "
                             "on output divergence")
    parser.add_argument("--engine-target", type=float, default=ENGINE_TARGET,
                        metavar="FLOAT",
                        help="batched-engine *suite* speedup floor "
                             "(median-of-N over the six-workload suite with "
                             "dpPred+cbPred) enforced under "
                             f"--strict/--strict-engine (default "
                             f"{ENGINE_TARGET})")
    parser.add_argument("--strict-engine", action="store_true",
                        help="enforce only the batched-engine suite gate "
                             "(CI perf-smoke: the single-run and parallel "
                             "targets are too noisy for shared runners)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the measurements as a structured "
                             "benchmark report (repro.obs manifest envelope)")
    args = parser.parse_args(argv)

    single = bench_single_run(args.budget)
    engine = bench_engine(args.budget, args.workloads)
    matrix = bench_matrix(args.budget, args.workloads, args.jobs)
    cache = bench_diskcache(
        args.budget, args.workloads, matrix["serial_results"]
    )

    rows = [
        ("single run (fast vs legacy dispatch)",
         f"{single['t_legacy']:.2f}s", f"{single['t_fast']:.2f}s",
         f"{single['speedup']:.2f}x",
         "DIVERGED" if single["diverged"] else "identical"),
        (f"engine on {engine['workload']} (scalar vs batched)",
         f"{engine['t_scalar']:.2f}s", f"{engine['t_batched']:.2f}s",
         f"{engine['speedup']:.2f}x",
         "DIVERGED" if engine["diverged"] else "identical"),
        (f"engine on suite x{len(engine['suite_workloads'])} "
         f"({engine['suite_config']}, median of {engine['suite_repeats']})",
         f"{engine['suite_t_scalar']:.2f}s",
         f"{engine['suite_t_batched']:.2f}s",
         f"{engine['suite_speedup']:.2f}x "
         f"[{engine['suite_speedup_ci_low']:.2f}, "
         f"{engine['suite_speedup_ci_high']:.2f}]",
         "DIVERGED" if engine["diverged"] else (
             f"{engine['suite_fallbacks']} fallbacks"
             if engine["suite_fallbacks"] else "identical")),
        (f"matrix {matrix['runs']} runs (serial vs --jobs={args.jobs})",
         f"{matrix['t_serial']:.2f}s", f"{matrix['t_parallel']:.2f}s",
         f"{matrix['speedup']:.2f}x",
         "DIVERGED" if matrix["diverged"] else "identical"),
        ("disk cache (cold vs replay)",
         f"{cache['t_cold']:.2f}s", f"{cache['t_warm']:.2f}s",
         f"{cache['speedup']:.0f}x",
         "DIVERGED" if cache["diverged"] else "identical"),
    ]
    print(render_table(
        ["phase", "before", "after", "speedup", "outputs"],
        rows,
        title=f"runner throughput (budget={args.budget}, "
              f"{single['accesses_per_sec']:,.0f} accesses/s single-run)",
    ))

    if args.json:
        from repro.obs.export import write_benchmark_report

        write_benchmark_report(
            args.json,
            benchmark="runner_throughput",
            params={
                "budget": args.budget,
                "jobs": args.jobs,
                "workloads": args.workloads,
            },
            measurements={
                "single": single,
                "engine": engine,
                "matrix": {
                    k: v for k, v in matrix.items()
                    if k != "serial_results"
                },
                "diskcache": cache,
            },
        )
        print(f"benchmark report written to {args.json}")

    failures = []
    for name, bench in (("single", single), ("engine", engine),
                        ("matrix", matrix), ("diskcache", cache)):
        if bench["diverged"]:
            failures.append(f"{name}: simulator outputs diverged")
    if args.strict or args.strict_engine:
        # The floor is judged against the bootstrap interval, not the
        # point estimate: fail only when even the interval's upper bound
        # sits below target — a real regression, not one noisy rep.
        if engine["suite_speedup_ci_high"] < args.engine_target:
            failures.append(
                f"batched-engine suite speedup "
                f"{engine['suite_speedup']:.2f}x (95% CI "
                f"[{engine['suite_speedup_ci_low']:.2f}, "
                f"{engine['suite_speedup_ci_high']:.2f}]) "
                f"< {args.engine_target}x target "
                f"({engine['suite_config']}, median of "
                f"{engine['suite_repeats']}, whole interval below target)"
            )
        if engine["suite_fallbacks"]:
            failures.append(
                f"batched engine fell back to scalar on "
                f"{engine['suite_fallbacks']} suite workload(s) with "
                f"predictors enabled"
            )
    if args.strict:
        if single["speedup"] < SINGLE_RUN_TARGET:
            failures.append(
                f"single-run speedup {single['speedup']:.2f}x "
                f"< {SINGLE_RUN_TARGET}x target"
            )
        if matrix["speedup"] < PARALLEL_TARGET:
            failures.append(
                f"parallel speedup {matrix['speedup']:.2f}x "
                f"< {PARALLEL_TARGET}x target (jobs={args.jobs})"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all phases produced identical simulator outputs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
