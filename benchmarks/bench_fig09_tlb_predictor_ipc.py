"""Benchmark target regenerating the paper's Figure 9 (experiment id: fig9)."""


def test_fig9(run_report):
    """Normalized IPC for TLB dead page predictors."""
    report = run_report("fig9")
    assert report.render()
