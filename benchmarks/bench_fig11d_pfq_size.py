"""Benchmark target regenerating the paper's Figure 11d (experiment id: fig11d)."""


def test_fig11d(run_report):
    """cbPred IPC across PFQ sizes."""
    report = run_report("fig11d")
    assert report.render()
