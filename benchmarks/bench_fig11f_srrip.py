"""Benchmark target regenerating the paper's Figure 11f (experiment id: fig11f)."""


def test_fig11f(run_report):
    """Predictors under SRRIP replacement."""
    report = run_report("fig11f")
    assert report.render()
