"""Benchmark target regenerating the paper's Figure 3 (experiment id: fig3)."""


def test_fig3(run_report):
    """Fraction of LLC entries dead or DOA at any time."""
    report = run_report("fig3")
    assert report.render()
