"""Benchmark target regenerating the paper's Table IV (experiment id: table4)."""


def test_table4(run_report):
    """LLT MPKI reductions by dead page predictors (incl. oracle)."""
    report = run_report("table4")
    assert report.render()
