"""Benchmark target regenerating the paper's Figure 10 (experiment id: fig10)."""


def test_fig10(run_report):
    """Normalized IPC for LLC / combined predictors."""
    report = run_report("fig10")
    assert report.render()
