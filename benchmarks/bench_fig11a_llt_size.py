"""Benchmark target regenerating the paper's Figure 11a (experiment id: fig11a)."""


def test_fig11a(run_report):
    """dpPred IPC across LLT sizes."""
    report = run_report("fig11a")
    assert report.render()
