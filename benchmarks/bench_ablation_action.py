"""Ablation bench (beyond the paper): dpPred bypass vs LRU demotion."""


def test_ablation_action(run_report):
    """Quantify Section V-A's bypass design choice."""
    report = run_report("ablation_action")
    assert report.render()
