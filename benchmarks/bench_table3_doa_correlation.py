"""Benchmark target regenerating the paper's Table III (experiment id: table3)."""


def test_table3(run_report):
    """Percent of LLC DOA blocks that map onto a DOA page."""
    report = run_report("table3")
    assert report.render()
