"""Benchmark harness configuration.

Each ``bench_*.py`` file regenerates exactly one paper artifact (DESIGN.md
§4) and prints the reproduced table next to the paper's reported values.
Budgets are reduced relative to the experiment CLI so the full harness
runs in minutes; set ``REPRO_BENCH_BUDGET`` to raise them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

#: Per-run access budget for benchmark-driven experiments.
BENCH_BUDGET = int(os.environ.get("REPRO_BENCH_BUDGET", "40000"))


@pytest.fixture
def run_report(benchmark, capsys):
    """Run one experiment under pytest-benchmark and print its report."""

    def _run(experiment_id: str):
        from repro.experiments.registry import run_experiment

        kwargs = {} if experiment_id == "storage" else {"budget": BENCH_BUDGET}
        report = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs),
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print("\n" + report.render() + "\n")
        return report

    return _run
