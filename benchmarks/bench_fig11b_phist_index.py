"""Benchmark target regenerating the paper's Figure 11b (experiment id: fig11b)."""


def test_fig11b(run_report):
    """dpPred IPC across pHIST indexing configurations."""
    report = run_report("fig11b")
    assert report.render()
