"""Benchmark target regenerating the paper's Table VI (experiment id: table6)."""


def test_table6(run_report):
    """Accuracy and coverage of dead page predictors."""
    report = run_report("table6")
    assert report.render()
