"""CI smoke for the simulation server (:mod:`repro.serve`).

End-to-end over a real socket, in one process (so the reference
simulation shares this interpreter's determinism):

1. start a background server with a warm worker pool over a fresh cache;
2. fire 8 concurrent *duplicate* ``POST /run`` requests plus 1 distinct
   one, behind a barrier, while a poller thread hits ``/healthz``;
3. assert exactly **2** simulations executed (the duplicates coalesced),
   every duplicate response is byte-identical, both results are
   byte-identical to the CLI path (an independent ``run_trace``), and
   ``/healthz`` stayed green throughout;
4. assert a warm cache hit answers in under 50 ms without touching the
   worker pool;
5. stop gracefully and verify the listener is down.

Exits non-zero on any violation. Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import repro.sim.diskcache as diskcache
from repro.serve import ServeClient, start_background
from repro.sim.config import fast_config
from repro.sim.parallel import close_shared_pool
from repro.sim.results import wire_bytes
from repro.sim.runner import machine_seed_for, run_trace
from repro.workloads.suite import get_trace

BUDGET = 6000
SEED = 42
DUPLICATES = 8
WARM_HIT_BUDGET_S = 0.050

DUP_CONFIG = {"tlb_predictor": "dppred", "llc_predictor": "cbpred"}
DISTINCT_CONFIG = {"tlb_predictor": "dppred"}

_failures = []


def check(ok: bool, message: str) -> None:
    print(("ok  " if ok else "FAIL") + f"  {message}")
    if not ok:
        _failures.append(message)


def reference(config_overrides) -> bytes:
    config = fast_config(**config_overrides)
    result = run_trace(
        get_trace("mcf", BUDGET, SEED), config,
        seed=machine_seed_for(SEED),
    )
    return result.to_wire()


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    diskcache.enable(tmp)
    server = start_background(workers=2)
    client = ServeClient(port=server.port)
    health_failures = []
    stop_polling = threading.Event()

    def poll_health():
        while not stop_polling.is_set():
            if not client.healthz():
                health_failures.append(time.monotonic())
            time.sleep(0.05)

    poller = threading.Thread(target=poll_health, daemon=True)
    poller.start()
    try:
        barrier = threading.Barrier(DUPLICATES + 1)

        def fire(config):
            barrier.wait()
            return client.run_bytes("mcf", config, budget=BUDGET, seed=SEED)

        with ThreadPoolExecutor(DUPLICATES + 1) as pool:
            futures = [
                pool.submit(fire, DUP_CONFIG) for _ in range(DUPLICATES)
            ]
            futures.append(pool.submit(fire, DISTINCT_CONFIG))
            raws = [f.result(timeout=300) for f in futures]

        # Provenance legitimately differs (one leader, N-1 followers);
        # the byte-identity contract is over the result payload.
        dup_results = {
            wire_bytes(json.loads(raw.decode())["result"])
            for raw in raws[:DUPLICATES]
        }
        check(
            len(dup_results) == 1,
            f"{DUPLICATES} duplicate results byte-identical "
            f"(got {len(dup_results)} distinct)",
        )
        counters = client.status()["counters"]
        check(
            counters["computed"] == 2,
            f"exactly 2 simulations executed (computed="
            f"{counters['computed']}, coalesced={counters['coalesced']}, "
            f"hits={counters['hits']})",
        )

        dup_result = json.loads(raws[0].decode())["result"]
        distinct_result = json.loads(raws[-1].decode())["result"]
        check(
            wire_bytes(dup_result) == reference(DUP_CONFIG),
            "duplicate-config result byte-identical to CLI run",
        )
        check(
            wire_bytes(distinct_result) == reference(DISTINCT_CONFIG),
            "distinct-config result byte-identical to CLI run",
        )

        start = time.perf_counter()
        warm = client.run("mcf", DUP_CONFIG, budget=BUDGET, seed=SEED)
        elapsed = time.perf_counter() - start
        check(
            warm["provenance"]["cached"] is True,
            "warm request served from cache",
        )
        check(
            elapsed < WARM_HIT_BUDGET_S,
            f"warm cache hit in {elapsed * 1000:.1f} ms "
            f"(< {WARM_HIT_BUDGET_S * 1000:.0f} ms)",
        )
        check(
            client.status()["counters"]["computed"] == 2,
            "warm hit did not touch the worker pool",
        )

        check(not health_failures, "/healthz stayed green under load")
    finally:
        stop_polling.set()
        poller.join(timeout=5)
        server.stop()
        close_shared_pool()

    check(client.healthz() is False, "listener down after graceful stop")

    if _failures:
        print(f"\n{len(_failures)} smoke failure(s)", file=sys.stderr)
        return 1
    print("\nserve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
