"""Benchmark target regenerating the paper's Figure 4 (experiment id: fig4)."""


def test_fig4(run_report):
    """Classification of dead blocks in the LLC at eviction."""
    report = run_report("fig4")
    assert report.render()
