"""Benchmark target regenerating the paper's Figure 11e (experiment id: fig11e)."""


def test_fig11e(run_report):
    """Combined predictor IPC across LLC sizes."""
    report = run_report("fig11e")
    assert report.render()
