"""Benchmark target regenerating the paper's Table V (experiment id: table5)."""


def test_table5(run_report):
    """LLC MPKI reductions by dead block predictors."""
    report = run_report("table5")
    assert report.render()
