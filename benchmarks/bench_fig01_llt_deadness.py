"""Benchmark target regenerating the paper's Figure 1 (experiment id: fig1)."""


def test_fig1(run_report):
    """Fraction of LLT entries dead or DOA at any time."""
    report = run_report("fig1")
    assert report.render()
