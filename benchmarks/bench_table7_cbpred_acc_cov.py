"""Benchmark target regenerating the paper's Table VII (experiment id: table7)."""


def test_table7(run_report):
    """Accuracy and coverage of dead block predictors."""
    report = run_report("table7")
    assert report.render()
