"""Extension bench (beyond the paper): TLB prefetching vs dpPred."""


def test_extension_prefetch(run_report):
    """Distance prefetching [43] compared against dead-page bypassing."""
    report = run_report("extension_prefetch")
    assert report.render()
