"""Benchmark target regenerating the paper's Figure 2 (experiment id: fig2)."""


def test_fig2(run_report):
    """Classification of dead pages in the LLT at eviction."""
    report = run_report("fig2")
    assert report.render()
